# Repro toolchain entry points.
#
#   make test        — tier-1 verification (full pytest suite). Every
#                      test runs under a faulthandler watchdog
#                      (REPRO_TEST_TIMEOUT seconds, default 300;
#                      0 disables) so a hung worker/shutdown regression
#                      fails with thread tracebacks instead of wedging
#                      the job — see tests/conftest.py
#   make bench       — the current PR's perf micro-benchmarks; writes
#                      BENCH_PR10.json at the repo root (network
#                      serving tier: repeat traffic over the socket
#                      wire protocol gated on the server's counters —
#                      net.parses == distinct queries, every repeat a
#                      wire-cache hit without re-parsing — plus the
#                      forked shared-memory process-pool throughput
#                      arm vs the GIL-bound in-process service) and
#                      refreshes BENCH_LATEST.json
#   make bench-quick — CI smoke: smaller op counts, writes
#                      BENCH_PR10.quick.json, same gates
#   make examples    — run every example under the new connect() API
#                      (the CI smoke job)
#   make bench-pr1   — re-run the PR 1 benchmarks (BENCH_PR1.json: seed
#                      row-at-a-time vs columnar memory engine)
#   make bench-pr2   — re-run the PR 2 benchmarks (BENCH_PR2.json:
#                      SQLite all-plans, pre/post temp-view registry)
#   make bench-pr3   — re-run the PR 3 benchmarks (BENCH_PR3.json:
#                      Algorithm-3 selective materialization + Selinger
#                      cost-based join ordering)
#   make bench-pr4   — re-run the PR 4 benchmarks (BENCH_PR4.json:
#                      dissociation query service traffic replay)
#   make bench-pr5   — re-run the PR 5 benchmarks (BENCH_PR5.json:
#                      unified session API + epoch-keyed result cache)
#   make bench-pr6   — re-run the PR 6 benchmarks (BENCH_PR6.json:
#                      fault-tolerant serving under injected chaos)
#   make bench-pr7   — re-run the PR 7 benchmarks (BENCH_PR7.json:
#                      per-table epoch vectors vs the PR-5 global
#                      version token)
#   make bench-pr8   — re-run the PR 8 benchmarks (BENCH_PR8.json:
#                      undo-log rollback vs the touch()-taint baseline
#                      on fault-injected mutation traffic)
#   make bench-pr9   — re-run the PR 9 benchmarks (BENCH_PR9.json:
#                      observability overhead gate + traced-arm
#                      per-layer latency breakdown)
#   make bench-pr10  — alias of the current `make bench`
#   make serve       — boot the demo server on repro://127.0.0.1:7432
#                      with /metrics on :9090

PYTHON ?= python

.PHONY: test bench bench-quick examples serve \
	bench-pr1 bench-pr2 bench-pr3 bench-pr4 bench-pr5 bench-pr6 \
	bench-pr7 bench-pr8 bench-pr9 bench-pr10

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr10.py

bench-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr10.py --quick

serve:
	PYTHONPATH=src $(PYTHON) -m repro serve --port 7432 --metrics-port 9090

examples:
	@set -e; for example in examples/*.py; do \
		echo "== $$example"; \
		PYTHONPATH=src $(PYTHON) $$example > /dev/null; \
	done; echo "all examples OK"

bench-pr1:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr1.py

bench-pr2:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr2.py

bench-pr3:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr3.py

bench-pr4:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr4.py

bench-pr5:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr5.py

bench-pr6:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr6.py

bench-pr7:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr7.py

bench-pr8:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr8.py

bench-pr9:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr9.py

bench-pr10:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr10.py
