# Repro toolchain entry points.
#
#   make test        — tier-1 verification (full pytest suite)
#   make bench       — the current PR's perf micro-benchmarks; writes
#                      BENCH_PR5.json at the repo root (unified session
#                      API: Zipf-skewed traffic replayed through
#                      repro.connect() serial + concurrent, with and
#                      without the epoch-keyed result cache; repeat-
#                      traffic speedups + hit rates) and refreshes the
#                      BENCH_LATEST.json copy
#   make bench-quick — CI smoke: chain-5 traffic mix only, writes
#                      BENCH_PR5.quick.json, asserts result-cache-warm
#                      throughput >= engine-warm throughput (and the
#                      concurrent session >= the serial baseline)
#   make examples    — run every example under the new connect() API
#                      (the CI smoke job)
#   make bench-pr1   — re-run the PR 1 benchmarks (BENCH_PR1.json: seed
#                      row-at-a-time vs columnar memory engine)
#   make bench-pr2   — re-run the PR 2 benchmarks (BENCH_PR2.json:
#                      SQLite all-plans, pre/post temp-view registry)
#   make bench-pr3   — re-run the PR 3 benchmarks (BENCH_PR3.json:
#                      Algorithm-3 selective materialization + Selinger
#                      cost-based join ordering)
#   make bench-pr4   — re-run the PR 4 benchmarks (BENCH_PR4.json:
#                      dissociation query service traffic replay)
#   make bench-pr5   — alias of the current `make bench`

PYTHON ?= python

.PHONY: test bench bench-quick examples \
	bench-pr1 bench-pr2 bench-pr3 bench-pr4 bench-pr5

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr5.py

bench-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr5.py --quick

examples:
	@set -e; for example in examples/*.py; do \
		echo "== $$example"; \
		PYTHONPATH=src $(PYTHON) $$example > /dev/null; \
	done; echo "all examples OK"

bench-pr1:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr1.py

bench-pr2:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr2.py

bench-pr3:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr3.py

bench-pr4:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr4.py

bench-pr5:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr5.py
