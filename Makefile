# Repro toolchain entry points.
#
#   make test        — tier-1 verification (full pytest suite)
#   make bench       — the current PR's perf micro-benchmarks; writes
#                      BENCH_PR2.json at the repo root (SQLite all-plans
#                      mode, before/after the materialized temp-view
#                      registry, on the Fig. 5 chain/star/TPC-H workloads)
#   make bench-quick — CI smoke: chain-5 workload only, no speedup gate
#   make bench-pr1   — re-run the PR 1 benchmarks (BENCH_PR1.json: seed
#                      row-at-a-time vs columnar memory engine)

PYTHON ?= python

.PHONY: test bench bench-quick bench-pr1

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr2.py

bench-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr2.py --quick

bench-pr1:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr1.py
