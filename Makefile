# Repro toolchain entry points.
#
#   make test        — tier-1 verification (full pytest suite)
#   make bench       — the current PR's perf micro-benchmarks; writes
#                      BENCH_PR4.json at the repo root (dissociation
#                      query service: closed-loop traffic replay, N
#                      clients × skewed query mix with db mutations,
#                      service vs serial baseline throughput + p50/p95)
#                      and refreshes the BENCH_LATEST.json copy
#   make bench-quick — CI smoke: chain-5 traffic mix only, writes
#                      BENCH_PR4.quick.json, asserts batched throughput
#                      >= the serial baseline
#   make bench-pr1   — re-run the PR 1 benchmarks (BENCH_PR1.json: seed
#                      row-at-a-time vs columnar memory engine)
#   make bench-pr2   — re-run the PR 2 benchmarks (BENCH_PR2.json:
#                      SQLite all-plans, pre/post temp-view registry)
#   make bench-pr3   — re-run the PR 3 benchmarks (BENCH_PR3.json:
#                      Algorithm-3 selective materialization + Selinger
#                      cost-based join ordering)
#   make bench-pr4   — alias of the current `make bench`

PYTHON ?= python

.PHONY: test bench bench-quick bench-pr1 bench-pr2 bench-pr3 bench-pr4

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr4.py

bench-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr4.py --quick

bench-pr1:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr1.py

bench-pr2:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr2.py

bench-pr3:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr3.py

bench-pr4:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr4.py
