# Repro toolchain entry points.
#
#   make test        — tier-1 verification (full pytest suite). Every
#                      test runs under a faulthandler watchdog
#                      (REPRO_TEST_TIMEOUT seconds, default 300;
#                      0 disables) so a hung worker/shutdown regression
#                      fails with thread tracebacks instead of wedging
#                      the job — see tests/conftest.py
#   make bench       — the current PR's perf micro-benchmarks; writes
#                      BENCH_PR9.json at the repo root (observability:
#                      the no-op Observer arm gated < 2% overhead vs
#                      the PR-8-equivalent warm path on the chain-7
#                      Zipf mix, plus a fully-traced arm with the
#                      per-layer latency breakdown from the registry
#                      histograms) and refreshes BENCH_LATEST.json
#   make bench-quick — CI smoke: memory backend only, writes
#                      BENCH_PR9.quick.json, same assertions with a
#                      <= 5% gate (small op counts are noisy)
#   make examples    — run every example under the new connect() API
#                      (the CI smoke job)
#   make bench-pr1   — re-run the PR 1 benchmarks (BENCH_PR1.json: seed
#                      row-at-a-time vs columnar memory engine)
#   make bench-pr2   — re-run the PR 2 benchmarks (BENCH_PR2.json:
#                      SQLite all-plans, pre/post temp-view registry)
#   make bench-pr3   — re-run the PR 3 benchmarks (BENCH_PR3.json:
#                      Algorithm-3 selective materialization + Selinger
#                      cost-based join ordering)
#   make bench-pr4   — re-run the PR 4 benchmarks (BENCH_PR4.json:
#                      dissociation query service traffic replay)
#   make bench-pr5   — re-run the PR 5 benchmarks (BENCH_PR5.json:
#                      unified session API + epoch-keyed result cache)
#   make bench-pr6   — re-run the PR 6 benchmarks (BENCH_PR6.json:
#                      fault-tolerant serving under injected chaos)
#   make bench-pr7   — re-run the PR 7 benchmarks (BENCH_PR7.json:
#                      per-table epoch vectors vs the PR-5 global
#                      version token)
#   make bench-pr8   — re-run the PR 8 benchmarks (BENCH_PR8.json:
#                      undo-log rollback vs the touch()-taint baseline
#                      on fault-injected mutation traffic)
#   make bench-pr9   — alias of the current `make bench`

PYTHON ?= python

.PHONY: test bench bench-quick examples \
	bench-pr1 bench-pr2 bench-pr3 bench-pr4 bench-pr5 bench-pr6 \
	bench-pr7 bench-pr8 bench-pr9

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr9.py

bench-quick:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr9.py --quick

examples:
	@set -e; for example in examples/*.py; do \
		echo "== $$example"; \
		PYTHONPATH=src $(PYTHON) $$example > /dev/null; \
	done; echo "all examples OK"

bench-pr1:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr1.py

bench-pr2:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr2.py

bench-pr3:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr3.py

bench-pr4:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr4.py

bench-pr5:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr5.py

bench-pr6:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr6.py

bench-pr7:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr7.py

bench-pr8:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr8.py

bench-pr9:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr9.py
