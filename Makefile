# Repro toolchain entry points.
#
#   make test   — tier-1 verification (full pytest suite)
#   make bench  — PR perf micro-benchmarks; writes BENCH_PR1.json at the
#                 repo root (seed row-at-a-time vs columnar engine on the
#                 Fig. 5 chain/star/TPC-H memory workloads)

PYTHON ?= python

.PHONY: test bench

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_pr1.py
