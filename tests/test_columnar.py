"""Equivalence tests for the columnar vectorized engine (PR 1).

The vectorized evaluator in :mod:`repro.engine.extensional` must return
scores equal (within 1e-12) to the preserved seed row-at-a-time
implementation (:mod:`repro.engine.reference`) on randomized instances,
for every plan and for every engine optimization combination, and the
memory and sqlite backends must agree. Also covers the
:class:`EvaluationCache` lifecycle: structural (cross-object) plan hits,
cross-query reuse, and invalidation when the database mutates.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Atom, Variable, Scan, parse_query
from repro.core.minplans import minimal_plans
from repro.core.singleplan import single_plan
from repro.db import ProbabilisticDatabase
from repro.engine import (
    DissociationEngine,
    EvaluationCache,
    evaluate_plan,
    plan_scores,
    plan_scores_reference,
)

from .helpers import (
    assert_backends_agree,
    random_database_for,
    random_query,
)

TOLERANCE = 1e-12


def _assert_equal_scores(left: dict, right: dict, context: str) -> None:
    assert set(left) == set(right), context
    for answer in left:
        assert abs(left[answer] - right[answer]) <= TOLERANCE, (
            f"{context}: {answer}: {left[answer]} != {right[answer]}"
        )


class TestVectorizedEquivalence:
    def test_per_plan_scores_match_reference(self):
        rng = random.Random(101)
        for trial in range(40):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            db = random_database_for(q, rng, domain_size=3)
            for plan in minimal_plans(q):
                want = plan_scores_reference(plan, q, db)
                got = plan_scores(plan, q, db)
                _assert_equal_scores(got, want, f"trial {trial}: {q}")

    def test_single_plan_scores_match_reference(self):
        rng = random.Random(102)
        for trial in range(40):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            db = random_database_for(q, rng, domain_size=3)
            merged = single_plan(q)
            want = plan_scores_reference(merged, q, db)
            got = plan_scores(merged, q, db)
            _assert_equal_scores(got, want, f"trial {trial}: {q}")

    def test_all_backends_agree_for_all_optimization_combos(self):
        # the differential harness: reference vs columnar vs SQLite
        # under every Optimizations combination, persistent engines
        rng = random.Random(103)
        for _ in range(12):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            db = random_database_for(q, rng, domain_size=2)
            assert_backends_agree(q, db)


class TestEvaluationCache:
    def test_structural_hits_across_distinct_plan_objects(self):
        x, y = Variable("x"), Variable("y")
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.5), ((1, 3), 0.25)])
        cache = EvaluationCache(db)
        first = evaluate_plan(Scan(Atom("R", (x, y))), db, cache=cache)
        # a structurally equal but distinct plan object must hit the cache
        before = len(cache._plans)
        second = evaluate_plan(Scan(Atom("R", (x, y))), db, cache=cache)
        assert first == second
        assert len(cache._plans) == before

    def test_cross_query_reuse_in_engine(self):
        rng = random.Random(105)
        q = random_query(rng, max_atoms=3, head_vars=1)
        db = random_database_for(q, rng, domain_size=3)
        engine = DissociationEngine(db)
        first = engine.propagation_score(q)
        assert engine._memory_cache is not None
        cached_plans = len(engine._memory_cache._plans)
        assert cached_plans > 0
        second = engine.propagation_score(q)
        _assert_equal_scores(first, second, "repeat evaluation")

    def test_cache_invalidated_when_database_mutates(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        q = parse_query("q(x) :- R(x)")
        engine = DissociationEngine(db)
        assert engine.propagation_score(q) == {(1,): 0.5}
        db.table("R").insert((2,), 0.25)
        assert engine.propagation_score(q) == {(1,): 0.5, (2,): 0.25}

    def test_cache_rejects_foreign_database(self):
        x = Variable("x")
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        other = ProbabilisticDatabase()
        other.add_table("R", [((1,), 0.5)])
        cache = EvaluationCache(db)
        with pytest.raises(ValueError):
            evaluate_plan(Scan(Atom("R", (x,))), other, cache=cache)

    def test_plan_scope_shares_encodings_but_not_results(self):
        x, y = Variable("x"), Variable("y")
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.5)])
        cache = EvaluationCache(db)
        evaluate_plan(Scan(Atom("R", (x, y))), db, cache=cache)
        scope = cache.plan_scope()
        assert scope._tables is cache._tables
        assert scope._plans == {}
        evaluate_plan(Scan(Atom("R", (x, y))), db, cache=scope)
        assert len(scope._plans) == 1
        assert len(cache._plans) == 1  # untouched by the scope
