"""Service-layer tests: micro-batching, the cross-query shared-subplan
DAG, engine batch entry points, and multi-threaded stress with
mid-stream database mutations.

The central guarantees pinned down here:

* a batch of overlapping queries evaluates each distinct structural
  subplan exactly once (asserted through the cache / registry counters);
* batch results are bit-identical to serial per-query evaluation on the
  memory backend, and within 1e-12 on SQLite, across every optimization
  combination;
* under concurrent submissions interleaved with database mutations,
  every result matches the serial evaluation of the exact epoch it ran
  under — caches never serve stale epochs.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future

import pytest

from repro.api import EngineConfig, ServiceConfig
from repro.core.query import ConjunctiveQuery
from repro.core.parser import parse_query
from repro.engine import DissociationEngine, Optimizations
from repro.service import (
    BatchPlanDAG,
    DissociationService,
    MicroBatcher,
    QueryRequest,
    ServiceOverloaded,
    SharedViewNamespace,
)
from repro.workloads import chain_database, chain_query

from .helpers import ALL_OPTIMIZATION_COMBOS, assert_scores_close

ALL_PLANS = Optimizations(single_plan=False, reuse_views=True)


def subchain(full: ConjunctiveQuery, i: int, j: int) -> ConjunctiveQuery:
    """A Boolean query over a contiguous atom window of ``full``."""
    return ConjunctiveQuery(full.atoms[i:j], ())


def overlapping_mix(k: int = 5) -> tuple:
    full = chain_query(k)
    queries = [
        full,
        subchain(full, 0, 3),
        subchain(full, 1, 4),
        subchain(full, 2, 5),
        subchain(full, 0, 4),
    ]
    return full, queries


def distinct_structural_nodes(plans) -> set:
    seen = set()
    for plan in plans:
        for node in plan.walk():
            seen.add(node)
    return seen


# ----------------------------------------------------------------------
# the cross-query shared-subplan DAG
# ----------------------------------------------------------------------
class TestBatchPlanDAG:
    def test_dedup_counts_on_overlapping_chains(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 30, seed=3, p_max=0.5)
        engine = DissociationEngine(db)
        roots = [engine.minimal_plans(q) for q in queries]
        dag = BatchPlanDAG(queries, roots)
        stats = dag.stats()
        assert stats.queries == len(queries)
        assert stats.plans == sum(len(r) for r in roots)
        assert stats.distinct_nodes == len(
            distinct_structural_nodes([p for r in roots for p in r])
        )
        # overlapping subchains must actually share subplans
        assert stats.node_occurrences > stats.distinct_nodes
        assert stats.shared_nodes > 0
        assert stats.cross_query_nodes > 0
        assert stats.dedup_ratio > 1.5

    def test_cross_query_nodes_are_in_multiple_queries(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 30, seed=3, p_max=0.5)
        engine = DissociationEngine(db)
        roots = [engine.minimal_plans(q) for q in queries]
        dag = BatchPlanDAG(queries, roots)
        for node in dag.cross_query_nodes():
            assert len(dag.queries_of(node)) >= 2

    def test_disjoint_queries_share_nothing(self):
        q1 = parse_query("q() :- R(x, y)")
        q2 = parse_query("q() :- S(x, y)")
        e = DissociationEngine(_tiny_db())
        dag = BatchPlanDAG(
            [q1, q2], [e.minimal_plans(q1), e.minimal_plans(q2)]
        )
        stats = dag.stats()
        assert stats.cross_query_nodes == 0
        assert stats.dedup_ratio == 1.0

    def test_reference_counts_match_engine_notion(self):
        from repro.engine import subplan_reference_counts

        _, queries = overlapping_mix()
        db = chain_database(5, 20, seed=4, p_max=0.5)
        engine = DissociationEngine(db)
        roots = [engine.minimal_plans(q) for q in queries]
        dag = BatchPlanDAG(queries, roots)
        assert dag.reference_counts() == subplan_reference_counts(
            [p for r in roots for p in r]
        )

    def test_root_list_mismatch_rejected(self):
        q = parse_query("q() :- R(x, y)")
        with pytest.raises(ValueError):
            BatchPlanDAG([q], [])


def _tiny_db():
    from repro.db import ProbabilisticDatabase

    db = ProbabilisticDatabase()
    db.add_table("R", [((1, 2), 0.5), ((2, 3), 0.4)])
    db.add_table("S", [((1, 2), 0.3)])
    return db


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def _request(query, opts=None) -> QueryRequest:
    return QueryRequest(
        query=query,
        optimizations=opts or Optimizations(),
        future=Future(),
    )


class TestMicroBatcher:
    def test_batches_group_by_optimizations(self):
        q = parse_query("q() :- R(x, y)")
        batcher = MicroBatcher(max_batch_size=8, max_batch_delay=0.0)
        batcher.submit(_request(q, Optimizations()))
        batcher.submit(_request(q, Optimizations.none()))
        batcher.submit(_request(q, Optimizations()))
        first = batcher.next_batch(timeout=1.0)
        assert [r.optimizations for r in first] == [
            Optimizations(),
            Optimizations(),
        ]
        second = batcher.next_batch(timeout=1.0)
        assert [r.optimizations for r in second] == [Optimizations.none()]

    def test_max_batch_size_enforced(self):
        q = parse_query("q() :- R(x, y)")
        batcher = MicroBatcher(max_batch_size=3, max_batch_delay=0.0)
        for _ in range(7):
            batcher.submit(_request(q))
        sizes = [
            len(batcher.next_batch(timeout=1.0)) for _ in range(3)
        ]
        assert sizes == [3, 3, 1]

    def test_overload_raises_when_not_blocking(self):
        q = parse_query("q() :- R(x, y)")
        batcher = MicroBatcher(max_pending=2)
        batcher.submit(_request(q))
        batcher.submit(_request(q))
        with pytest.raises(ServiceOverloaded):
            batcher.submit(_request(q), block=False)
        assert batcher.rejected == 1

    def test_close_wakes_waiters_and_drains(self):
        q = parse_query("q() :- R(x, y)")
        batcher = MicroBatcher()
        batcher.submit(_request(q))
        batcher.close()
        assert len(batcher.next_batch()) == 1  # drains what is pending
        assert batcher.next_batch() == []  # then reports closed
        with pytest.raises(RuntimeError):
            batcher.submit(_request(q))

    def test_delay_coalesces_stragglers(self):
        q = parse_query("q() :- R(x, y)")
        batcher = MicroBatcher(max_batch_size=2, max_batch_delay=0.5)
        batcher.submit(_request(q))

        def late():
            time.sleep(0.05)
            batcher.submit(_request(q))

        thread = threading.Thread(target=late)
        thread.start()
        batch = batcher.next_batch(timeout=2.0)
        thread.join()
        assert len(batch) == 2


# ----------------------------------------------------------------------
# engine batch entry points
# ----------------------------------------------------------------------
class TestEvaluateBatch:
    def test_memory_batch_bit_identical_to_serial_all_combos(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 40, seed=5, p_max=0.5)
        for opts in ALL_OPTIMIZATION_COMBOS:
            batch_engine = DissociationEngine(db)
            serial_engine = DissociationEngine(db)
            results = batch_engine.evaluate_batch(queries, opts)
            for query, result in zip(queries, results):
                serial = serial_engine.propagation_score(query, opts)
                assert result.scores == serial, (opts, query)
                assert result.epoch == db.epoch_vector(query.relations)

    def test_sqlite_batch_matches_serial_all_combos(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 40, seed=6, p_max=0.5)
        for opts in ALL_OPTIMIZATION_COMBOS:
            batch_engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
            serial_engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
            results = batch_engine.evaluate_batch(queries, opts)
            for query, result in zip(queries, results):
                serial = serial_engine.propagation_score(query, opts)
                assert_scores_close(
                    result.scores, serial, tolerance=1e-12
                )

    def test_memory_batch_evaluates_each_subplan_exactly_once(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 40, seed=7, p_max=0.5)
        engine = DissociationEngine(db)
        plans_per = [engine.minimal_plans(q) for q in queries]
        distinct = distinct_structural_nodes(
            [p for plans in plans_per for p in plans]
        )
        engine.evaluate_batch(queries, ALL_PLANS)
        stats = engine.cache_stats()
        # one miss (= one evaluation) per distinct structural node; every
        # further occurrence across the batch is a cache hit
        assert stats["misses"] == len(distinct)
        assert stats["hits"] > 0

    def test_batch_of_8_overlapping_queries_exactly_once(self):
        # the acceptance shape: >= 8 concurrent overlapping queries
        full = chain_query(7)
        queries = [
            subchain(full, i, j)
            for i, j in [(0, 7), (0, 4), (1, 5), (2, 6), (3, 7), (0, 5), (2, 7), (1, 6)]
        ]
        assert len(queries) == 8
        db = chain_database(7, 60, seed=8, p_max=0.5)
        engine = DissociationEngine(db)
        plans_per = [engine.minimal_plans(q) for q in queries]
        distinct = distinct_structural_nodes(
            [p for plans in plans_per for p in plans]
        )
        results = engine.evaluate_batch(queries, ALL_PLANS)
        stats = engine.cache_stats()
        assert stats["misses"] == len(distinct)
        # cross-check against serial evaluation, bit for bit
        serial_engine = DissociationEngine(db)
        for query, result in zip(queries, results):
            assert result.scores == serial_engine.propagation_score(
                query, ALL_PLANS
            )

    def test_sqlite_batch_materializes_shared_subplans_once(self):
        from repro.engine import subplan_reference_counts

        _, queries = overlapping_mix()
        db = chain_database(5, 40, seed=9, p_max=0.5)
        # write_factor=0: every subplan with >= 2 reference sites passes
        # the cost gate, so "shared implies materialized exactly once"
        engine = DissociationEngine(db, EngineConfig(backend="sqlite", write_factor=0.0))
        plans_per = [engine.minimal_plans(q) for q in queries]
        shared = [
            node
            for node, count in subplan_reference_counts(
                [p for plans in plans_per for p in plans]
            ).items()
            if count >= 2
        ]
        engine.evaluate_batch(queries, ALL_PLANS)
        stats = engine.cache_stats()
        assert stats["misses"] == len(shared)
        assert stats["hits"] > 0
        registry = engine.sqlite.view_registry
        for node in shared:
            assert node in registry

    def test_duplicate_queries_collapse_to_one_evaluation(self):
        query = chain_query(4)
        db = chain_database(4, 30, seed=10, p_max=0.5)
        engine = DissociationEngine(db)
        results = engine.evaluate_batch([query] * 6, ALL_PLANS)
        assert len(results) == 6
        first = results[0]
        for result in results[1:]:
            assert result.scores == first.scores
            # fanned-out copies are independent dicts
            assert result.scores is not first.scores
        stats = engine.cache_stats()
        plans = engine.minimal_plans(query)
        assert stats["misses"] == len(distinct_structural_nodes(plans))

    def test_sqlite_union_factors_shared_tops_into_ctes(self):
        # an enormous write factor keeps everything out of the registry,
        # so the only sharing left is the per-statement CTE factoring
        query = chain_query(5)
        db = chain_database(5, 40, seed=11, p_max=0.5)
        engine = DissociationEngine(
            db, EngineConfig(backend="sqlite", write_factor=1e12)
        )
        result = engine.evaluate(query, ALL_PLANS)
        assert engine.cache_stats()["misses"] == 0  # nothing materialized
        assert result.sql is not None and "shared_" in result.sql
        baseline = DissociationEngine(db, EngineConfig(backend="sqlite")).evaluate(
            query, ALL_PLANS
        )
        assert_scores_close(result.scores, baseline.scores, 1e-12)

    def test_empty_batch(self):
        db = chain_database(3, 10, seed=12, p_max=0.5)
        assert DissociationEngine(db).evaluate_batch([]) == []


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class TestDissociationService:
    def test_results_match_serial_and_fan_out(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 40, seed=13, p_max=0.5)
        serial = DissociationEngine(db)
        with DissociationService(db, service=ServiceConfig(workers=2)) as service:
            futures = [
                service.submit(q) for q in queries for _ in range(2)
            ]
            results = service.gather(futures)
        for query, result in zip(
            [q for q in queries for _ in range(2)], results
        ):
            assert result.scores == serial.propagation_score(query)

    def test_sqlite_service_with_calibration(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 30, seed=14, p_max=0.5)
        serial = DissociationEngine(db, EngineConfig(backend="sqlite"))
        with DissociationService(
            db,
            EngineConfig(backend="sqlite"),
            ServiceConfig(workers=2, calibrate=True),
        ) as service:
            results = service.evaluate_many(queries, ALL_PLANS)
            stats = service.stats()
        assert 0.5 <= stats["write_factor"] <= 16.0
        for query, result in zip(queries, results):
            assert_scores_close(
                result.scores,
                serial.propagation_score(query, ALL_PLANS),
                1e-12,
            )

    def test_stats_report_batching_and_dag_sharing(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 30, seed=15, p_max=0.5)
        with DissociationService(
            db,
            service=ServiceConfig(
                workers=1,
                max_batch_size=16,
                max_batch_delay=0.05,
                collect_dag_stats=True,
            ),
        ) as service:
            service.gather(
                [service.submit(q) for q in queries for _ in range(2)]
            )
            stats = service.stats()
        assert stats["queries"] == 2 * len(queries)
        assert stats["batches"] < stats["queries"]  # batching happened
        assert stats["mean_batch_size"] > 1.0
        assert stats["dag"]["dedup_ratio"] > 1.0
        assert stats["sessions"]

    def test_error_propagates_through_future(self):
        db = chain_database(3, 10, seed=16, p_max=0.5)
        missing = parse_query("q() :- NoSuchTable(x, y)")
        with DissociationService(db, service=ServiceConfig(workers=1)) as service:
            future = service.submit(missing)
            with pytest.raises(Exception):
                future.result(timeout=30)
            # the worker survives an erroring batch
            ok = service.evaluate(chain_query(3))
        assert ok.scores == DissociationEngine(db).propagation_score(
            chain_query(3)
        )

    def test_async_front_end(self):
        import asyncio

        db = chain_database(4, 20, seed=17, p_max=0.5)
        query = chain_query(4)

        async def main(service):
            return await asyncio.gather(
                service.submit_async(query),
                service.submit_async(query),
            )

        with DissociationService(db, service=ServiceConfig(workers=1)) as service:
            first, second = asyncio.run(main(service))
        assert first.scores == second.scores

    def test_submit_after_close_rejected(self):
        db = chain_database(3, 10, seed=18, p_max=0.5)
        service = DissociationService(db, service=ServiceConfig(workers=1))
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(chain_query(3))


# ----------------------------------------------------------------------
# concurrency stress: many clients, mutations mid-stream
# ----------------------------------------------------------------------
class _Harness:
    """Drives one service from many client threads while the database
    mutates, recording every (query, result) pair."""

    def __init__(self, service, queries, requests_per_client, clients, opts):
        self.service = service
        self.queries = queries
        self.requests_per_client = requests_per_client
        self.clients = clients
        self.opts = opts
        self.observed: list = []
        self._lock = threading.Lock()
        self.errors: list = []

    def _client(self, seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(self.requests_per_client):
                query = rng.choice(self.queries)
                result = self.service.submit(query, self.opts).result(60)
                with self._lock:
                    self.observed.append((query, result))
        except BaseException as exc:  # noqa: BLE001 - surfaced in the test
            with self._lock:
                self.errors.append(exc)

    def run(self, mutate_between=None) -> None:
        threads = [
            threading.Thread(target=self._client, args=(seed,))
            for seed in range(self.clients)
        ]
        for thread in threads:
            thread.start()
        if mutate_between is not None:
            mutate_between()
        for thread in threads:
            thread.join()


def _expected_for_epoch(db, queries, opts, backend="memory"):
    """Cold baselines keyed by ``(epoch vector, query, head order)``.

    Results stamp the epoch vector of their own relations, so a query
    untouched by a mutation keeps its pre-mutation key — and its
    pre-mutation scores, making re-registration consistent.
    """
    engine = DissociationEngine(db, EngineConfig(backend=backend))
    return {
        (db.epoch_vector(q.relations), q, q.head_order): (
            engine.propagation_score(q, opts)
        )
        for q in queries
    }


class TestConcurrencyStress:
    def test_memory_stress_with_mutations_bit_identical_per_epoch(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 40, seed=19, p_max=0.5)
        opts = ALL_PLANS
        expected = _expected_for_epoch(db, queries, opts)
        with DissociationService(
            db,
            service=ServiceConfig(
                workers=4, max_batch_size=8, max_batch_delay=0.005
            ),
        ) as service:
            harness = _Harness(service, queries, 15, 6, opts)

            def mutate_twice():
                for step in range(2):
                    time.sleep(0.05)
                    service.mutate(
                        lambda d: d.table("R1").insert(
                            (10_000 + step, 10_001 + step), 0.5
                        )
                    )
                    # epochs are stable until the next mutate(); compute
                    # the new expectations while clients keep running
                    expected.update(_expected_for_epoch(db, queries, opts))

            harness.run(mutate_between=mutate_twice)
        assert not harness.errors, harness.errors
        assert len(harness.observed) == 6 * 15
        seen_epochs = set()
        for query, result in harness.observed:
            seen_epochs.add(result.epoch)
            key = (result.epoch, query, query.head_order)
            assert key in expected, "result from unknown epoch"
            # bit-identical: stale-epoch cache reuse would show up here
            assert result.scores == expected[key]
        assert len(seen_epochs) >= 1

    def test_sqlite_stress_with_mutation_per_epoch(self):
        _, queries = overlapping_mix()
        db = chain_database(5, 30, seed=20, p_max=0.5)
        opts = ALL_PLANS
        expected = _expected_for_epoch(db, queries, opts, "sqlite")
        with DissociationService(
            db,
            EngineConfig(backend="sqlite"),
            ServiceConfig(workers=3, max_batch_size=8, max_batch_delay=0.005),
        ) as service:
            harness = _Harness(service, queries, 8, 4, opts)

            def mutate_once():
                time.sleep(0.05)
                service.mutate(
                    lambda d: d.table("R2").insert((20_000, 20_001), 0.4)
                )
                expected.update(
                    _expected_for_epoch(db, queries, opts, "sqlite")
                )

            harness.run(mutate_between=mutate_once)
        assert not harness.errors, harness.errors
        for query, result in harness.observed:
            key = (result.epoch, query, query.head_order)
            assert key in expected
            assert_scores_close(result.scores, expected[key], 1e-9)

    def test_shared_namespace_consistent_across_sessions(self):
        namespace = SharedViewNamespace()
        first = namespace.name_for(42, "key-a")
        again = namespace.name_for(42, "key-a")
        other = namespace.name_for(42, "key-b")  # digest collision
        assert first == again
        assert other != first
        namespace.note_materialized("key-a", first)
        namespace.note_materialized("key-a", first)  # second session
        assert namespace.sessions_holding("key-a") == 2
        namespace.note_evicted("key-a", first)
        assert namespace.sessions_holding("key-a") == 1
        stats = namespace.stats()
        assert stats["materializations"] == 2
        assert stats["evictions"] == 1


# ----------------------------------------------------------------------
# regressions
# ----------------------------------------------------------------------
class TestRegressions:
    def test_workers_survive_burst_races(self):
        """Two workers racing for one burst: the loser must go back to
        waiting, not treat the drained queue as shutdown."""
        db = chain_database(3, 15, seed=25, p_max=0.5)
        query = chain_query(3)
        service = DissociationService(
            db,
            service=ServiceConfig(
                workers=2, max_batch_size=2, max_batch_delay=0.0
            ),
        )
        try:
            for _ in range(12):
                futures = [service.submit(query) for _ in range(2)]
                service.gather(futures, timeout=30)
            assert all(t.is_alive() for t in service._threads)
        finally:
            service.close()

    def test_materialized_parent_of_scope_cte_child(self):
        """A registered view whose subtree references a scope CTE must
        inline the definition (the DDL runs outside the statement whose
        WITH clause holds it)."""
        from repro.core import Variable, parse_query
        from repro.core.plans import Join, Project, Scan
        from repro.db import ProbabilisticDatabase, SQLiteBackend
        from repro.engine import SQLCompiler, StatementScope

        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.5), ((1, 3), 0.6), ((2, 3), 0.7)])
        db.add_table("S", [((1,), 0.5), ((2,), 0.4)])
        db.add_table("T", [((1,), 0.3), ((2,), 0.8)])
        x = Variable("x")
        shared = Project(
            [x], Scan(parse_query("q(x, y) :- R(x, y)").atoms[0])
        )
        scan_s = Scan(parse_query("q(x) :- S(x)").atoms[0])
        scan_t = Scan(parse_query("q(x) :- T(x)").atoms[0])
        parent_a = Project([], Join([shared, scan_s]))
        parent_b = Project([], Join([shared, scan_t]))
        backend = SQLiteBackend(db)
        registry = backend.view_registry
        compiler = SQLCompiler(db.schema, reuse_views=True)
        from repro.engine import subplan_reference_counts

        scope = StatementScope(
            subplan_reference_counts(
                [parent_a, parent_b], include_joins=True
            )
        )
        materialize_parents = {parent_a, parent_b}
        refs = []
        for plan in (parent_a, parent_b):
            created, ref = compiler.compile_selective(
                plan,
                registry,
                lambda node: node in materialize_parents,
                scope=scope,
            )
            refs.append(ref)
        # the shared child became a statement CTE, both parents views
        assert scope.cte_nodes and shared in scope.cte_nodes
        assert parent_a in registry and parent_b in registry
        for ref in refs:
            rows = backend.execute(f"SELECT * FROM {ref}")
            assert len(rows) == 1  # Boolean aggregate
        backend.close()

    def test_concurrent_mutators_both_complete(self):
        db = chain_database(3, 15, seed=26, p_max=0.5)
        query = chain_query(3)
        with DissociationService(db, service=ServiceConfig(workers=2)) as service:
            stop = threading.Event()

            def load():
                while not stop.is_set():
                    service.evaluate(query)

            loader = threading.Thread(target=load)
            loader.start()
            try:
                mutators = [
                    threading.Thread(
                        target=lambda i=i: service.mutate(
                            lambda d: d.table("R1").insert(
                                (30_000 + i, 30_001 + i), 0.5
                            )
                        ),
                    )
                    for i in range(4)
                ]
                for thread in mutators:
                    thread.start()
                for thread in mutators:
                    thread.join(timeout=30)
                    assert not thread.is_alive(), "mutator starved"
            finally:
                stop.set()
                loader.join(timeout=30)
        assert service.stats()["mutations"] == 4

    def test_namespace_census_exact_across_snapshot_rebuilds(self):
        """Dropping a SQLite snapshot (mutation-triggered rebuild) must
        release its views from the shared namespace census."""
        db = chain_database(3, 20, seed=27, p_max=0.5)
        # Boolean chain: its minimal plans share projections, so the
        # zero write factor materializes views on the first call
        query = chain_query(3, boolean=True)
        with DissociationService(
            db,
            EngineConfig(backend="sqlite", write_factor=0.0),
            ServiceConfig(workers=1),
        ) as service:
            service.evaluate(query, ALL_PLANS)
            before = service.namespace.stats()
            assert before["live_views"] > 0
            service.mutate(
                lambda d: d.table("R1").insert((40_000, 40_001), 0.5)
            )
            service.evaluate(query, ALL_PLANS)
            after = service.namespace.stats()
            sessions = service.stats()["sessions"]
        # the refreshed snapshot invalidated (and re-registered) only
        # the views scanning the mutated table: the census must equal
        # what the live registries actually hold, and at least one view
        # over R1 must have been released through the namespace
        live_per_registry = sum(s["cache"]["size"] for s in sessions)
        assert after["live_views"] == live_per_registry
        assert after["evictions"] >= 1

    def test_namespace_name_map_is_bounded(self):
        namespace = SharedViewNamespace()
        namespace.MAX_NAME_ENTRIES = 8
        for i in range(50):
            namespace.name_for(i, f"key-{i}")
        assert namespace.stats()["known_names"] <= 8
        # live entries survive the cap
        live_name = namespace.name_for(999, "live-key")
        namespace.note_materialized("live-key", live_name)
        for i in range(100, 150):
            namespace.name_for(i, f"key-{i}")
        assert namespace.name_for(999, "live-key") == live_name
