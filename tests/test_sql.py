"""Tests for the SQL compiler and the SQLite backend."""

import random

import pytest

from repro.api import EngineConfig
from repro.core import minimal_plans, parse_query
from repro.core.singleplan import single_plan
from repro.db import IorAggregate, ProbabilisticDatabase, SQLiteBackend, sql_literal
from repro.engine import (
    DissociationEngine,
    SQLCompiler,
    deterministic_sql,
    lineage_sql,
    plan_scores,
)

from .helpers import assert_scores_close, random_database_for, random_query


class TestIorAggregate:
    def test_combines_independently(self):
        agg = IorAggregate()
        for p in (0.5, 0.5):
            agg.step(p)
        assert abs(agg.finalize() - 0.75) < 1e-12

    def test_certain_tuple(self):
        agg = IorAggregate()
        agg.step(1.0)
        agg.step(0.3)
        assert agg.finalize() == 1.0

    def test_empty_is_zero(self):
        assert IorAggregate().finalize() == 0.0

    def test_none_skipped(self):
        agg = IorAggregate()
        agg.step(None)
        agg.step(0.4)
        assert abs(agg.finalize() - 0.4) < 1e-12


class TestSqlLiteral:
    def test_string_quoting(self):
        assert sql_literal("a'b") == "'a''b'"

    def test_numbers(self):
        assert sql_literal(3) == "3"
        assert sql_literal(2.5) == "2.5"

    def test_none(self):
        assert sql_literal(None) == "NULL"


class TestBackendMaterialization:
    def test_counts(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), ((2,), 0.5)])
        with SQLiteBackend(db) as backend:
            assert backend.table_count("R") == 2

    def test_probability_column(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((7,), 0.25)], columns=("v",))
        with SQLiteBackend(db) as backend:
            rows = backend.execute('SELECT v, _p FROM "R"')
            assert rows == [(7, 0.25)]

    def test_reserved_column_rejected(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)], columns=("_p",))
        with pytest.raises(ValueError):
            SQLiteBackend(db)


class TestCompiledPlans:
    def _check(self, query_text, seed, reuse_views=True):
        rng = random.Random(seed)
        q = parse_query(query_text)
        db = random_database_for(q, rng)
        compiler = SQLCompiler(db.schema, reuse_views=reuse_views)
        with SQLiteBackend(db) as backend:
            for plan in minimal_plans(q):
                expected = plan_scores(plan, q, db)
                sql = compiler.compile(plan, q)
                got = {}
                for row in backend.execute(sql):
                    if row[-1] is not None:
                        got[tuple(row[:-1])] = row[-1]
                assert_scores_close(got, expected, tolerance=1e-9)

    def test_safe_plan(self):
        self._check("q() :- R(x), S(x,y)", 1)

    def test_unsafe_plans(self):
        self._check("q() :- R(x), S(x,y), T(y)", 2)

    def test_non_boolean(self):
        self._check("q(z) :- R(z,x), S(x,y), T(y)", 3)

    def test_with_constants(self):
        rng = random.Random(4)
        q = parse_query("q() :- R(1, x), S(x)")
        db = random_database_for(q, rng)
        compiler = SQLCompiler(db.schema)
        with SQLiteBackend(db) as backend:
            (plan,) = minimal_plans(q)
            sql = compiler.compile(plan, q)
            got = backend.execute(sql)
            expected = plan_scores(plan, q, db)
            if expected:
                assert abs(got[0][-1] - expected[()]) < 1e-9

    def test_single_plan_with_views(self):
        rng = random.Random(5)
        q = parse_query("q() :- R(x,z), S(y,u), T(z), U(u), M(x,y,z,u)")
        db = random_database_for(q, rng, domain_size=2)
        plan = single_plan(q)
        expected = plan_scores(plan, q, db)
        for reuse in (True, False):
            compiler = SQLCompiler(db.schema, reuse_views=reuse)
            sql = compiler.compile(plan, q)
            if reuse:
                assert "WITH" in sql
            with SQLiteBackend(db) as backend:
                got = {
                    tuple(row[:-1]): row[-1]
                    for row in backend.execute(sql)
                    if row[-1] is not None
                }
                assert_scores_close(got, expected, tolerance=1e-9)

    def test_random_queries_match_memory_backend(self):
        rng = random.Random(6)
        for _ in range(25):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            db = random_database_for(q, rng, domain_size=2)
            memory = DissociationEngine(db, EngineConfig(backend="memory"))
            sqlite = DissociationEngine(db, EngineConfig(backend="sqlite"))
            assert_scores_close(
                memory.propagation_score(q),
                sqlite.propagation_score(q),
                tolerance=1e-9,
            )


class TestBaselineSQL:
    def test_deterministic_sql_returns_answers(self):
        rng = random.Random(7)
        q = parse_query("q(z) :- R(z,x), S(x,y), T(y)")
        db = random_database_for(q, rng)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        rows = engine.sqlite.execute(deterministic_sql(q, db.schema))
        assert {tuple(r) for r in rows} == engine.answers(q)

    def test_deterministic_sql_boolean(self):
        rng = random.Random(8)
        q = parse_query("q() :- R(x), S(x,y)")
        db = random_database_for(q, rng)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        rows = engine.sqlite.execute(deterministic_sql(q, db.schema))
        assert (len(rows) == 1) == (() in engine.answers(q))

    def test_lineage_sql_row_count_is_lineage_size(self):
        rng = random.Random(9)
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        db = random_database_for(q, rng)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        rows = engine.sqlite.execute(lineage_sql(q, db.schema))
        lineage = engine.lineage(q)
        total = sum(len(f) for f in lineage.by_answer.values())
        assert len(rows) == total
