"""Tests for the workload generators (chains, stars, TPC-H subset)."""

import random

import pytest

from repro.core import is_hierarchical, minimal_plans
from repro.engine import DissociationEngine
from repro.workloads import (
    TPCHParameters,
    chain_database,
    chain_domain_size,
    chain_query,
    filtered_instance,
    like_match,
    star_database,
    star_query,
    tpch_database,
    tpch_query,
)


class TestChains:
    def test_query_shape(self):
        q = chain_query(4)
        assert len(q.atoms) == 4
        assert [v.name for v in q.head_order] == ["x0", "x4"]

    def test_boolean_variant(self):
        assert chain_query(3, boolean=True).is_boolean()

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            chain_query(0)

    def test_database_tables(self):
        db = chain_database(3, 100, seed=0)
        assert db.table_names == ["R1", "R2", "R3"]
        assert all(len(db.table(n)) == 100 for n in db.table_names)

    def test_probabilities_bounded(self):
        db = chain_database(3, 50, p_max=0.4, seed=1)
        for table in db:
            for _, p in table:
                assert 0 <= p <= 0.4

    def test_deterministic_tables(self):
        db = chain_database(
            3, 50, seed=1, deterministic_tables=frozenset({"R2"})
        )
        assert db.schema.deterministic_relations == {"R2"}

    def test_domain_size_monotone_in_n(self):
        assert chain_domain_size(4, 1000) > chain_domain_size(4, 100)

    def test_reproducible(self):
        a = chain_database(3, 40, seed=7)
        b = chain_database(3, 40, seed=7)
        assert a.table("R1").rows == b.table("R1").rows

    def test_produces_answers(self):
        q = chain_query(3)
        db = chain_database(3, 300, seed=2)
        engine = DissociationEngine(db)
        assert len(engine.answers(q)) > 0


class TestStars:
    def test_query_shape(self):
        q = star_query(3)
        assert len(q.atoms) == 4  # R1..R3 plus hub R0
        assert q.is_boolean()
        assert q.atom("R0").arity == 3

    def test_anchor_constant(self):
        q = star_query(2)
        assert q.atom("R1").has_constants()

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            star_query(0)

    def test_database_matches_query(self):
        k = 3
        q = star_query(k)
        db = star_database(k, 60, seed=3)
        engine = DissociationEngine(db)
        scores = engine.propagation_score(q)
        assert set(scores) <= {()}

    def test_unsafe_for_k2(self):
        assert not is_hierarchical(star_query(2))


class TestLikeMatch:
    def test_percent(self):
        assert like_match("%red%", "dark red metallic")
        assert not like_match("%red%", "blue")

    def test_underscore(self):
        assert like_match("r_d", "red")
        assert not like_match("r_d", "reed")

    def test_anchored(self):
        assert not like_match("red", "dark red")
        assert like_match("%", "anything")

    def test_multi_wildcards(self):
        assert like_match("%red%green%", "a red and green thing")
        assert not like_match("%red%green%", "a green and red thing")


class TestTPCH:
    def test_query_has_two_minimal_plans(self):
        assert len(minimal_plans(tpch_query())) == 2

    def test_database_shapes(self):
        db = tpch_database(scale=0.01, seed=0)
        assert len(db.table("S")) == 100
        assert len(db.table("P")) == 2000
        # ~4 links per part modulo collisions
        assert len(db.table("PS")) > 4000

    def test_nationkeys_bounded(self):
        db = tpch_database(scale=0.01, seed=0)
        assert {row[1] for row, _ in db.table("S")} <= set(range(25))

    def test_part_names_use_colors(self):
        from repro.workloads import COLORS

        db = tpch_database(scale=0.005, seed=1)
        for row, _ in list(db.table("P"))[:20]:
            assert all(w in COLORS for w in row[1].split())

    def test_filtered_instance(self):
        db = tpch_database(scale=0.01, seed=2)
        params = TPCHParameters(50, "%red%")
        filtered = filtered_instance(db, params)
        assert all(row[0] <= 50 for row, _ in filtered.table("S"))
        assert all(row[0] <= 50 for row, _ in filtered.table("PS"))
        assert all(
            like_match("%red%", row[1]) for row, _ in filtered.table("P")
        )

    def test_end_to_end_ranking(self):
        db = tpch_database(scale=0.005, seed=4)
        filtered = filtered_instance(db, TPCHParameters(40, "%"))
        engine = DissociationEngine(filtered)
        q = tpch_query()
        scores = engine.propagation_score(q)
        exact = engine.exact(q)
        assert set(scores) == set(exact)
        for a in exact:
            assert scores[a] >= exact[a] - 1e-9
