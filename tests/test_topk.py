"""Tests for certified top-k from probability intervals."""

import random

import pytest

from repro.ranking.topk import TopKCertificate, certified_top_k, certify_top_k
from repro.workloads import chain_database, chain_query

from .helpers import random_database_for, random_query


class TestCertifyFromBounds:
    def test_disjoint_intervals_fully_certified(self):
        bounds = {
            "a": (0.8, 0.9),
            "b": (0.5, 0.6),
            "c": (0.1, 0.2),
        }
        cert = certify_top_k(bounds, k=2)
        assert cert.certain == ["a", "b"]
        assert cert.excluded == ["c"]
        assert cert.is_complete()

    def test_overlap_leaves_undecided(self):
        bounds = {
            "a": (0.8, 0.9),
            "b": (0.4, 0.6),
            "c": (0.5, 0.7),
        }
        cert = certify_top_k(bounds, k=2)
        assert "a" in cert.certain
        assert set(cert.undecided) == {"b", "c"}
        assert not cert.is_complete()

    def test_k_at_least_answer_count(self):
        bounds = {"a": (0.5, 0.6), "b": (0.1, 0.2)}
        cert = certify_top_k(bounds, k=5)
        # everything is trivially in the top 5
        assert set(cert.certain) == {"a", "b"}
        assert cert.excluded == []

    def test_empty_bounds(self):
        cert = certify_top_k({}, k=3)
        assert cert.candidates() == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            certify_top_k({"a": (0.1, 0.2)}, k=0)

    def test_partition_is_total(self):
        rng = random.Random(0)
        for _ in range(50):
            bounds = {}
            for i in range(rng.randint(1, 12)):
                low = rng.random()
                bounds[i] = (low, min(1.0, low + rng.random() * 0.3))
            cert = certify_top_k(bounds, k=3)
            classified = (
                set(cert.certain) | set(cert.undecided) | set(cert.excluded)
            )
            assert classified == set(bounds)


class TestEndToEnd:
    def test_certificate_sound_against_exact(self):
        from repro.engine import DissociationEngine
        from repro.ranking import top_k

        q = chain_query(3)
        db = chain_database(3, 80, seed=21, p_max=0.6)
        k = 5
        cert = certified_top_k(q, db, k=k)
        exact = DissociationEngine(db).exact(q)
        true_top = set(top_k(exact, k))
        # certified-in answers really are in the exact top k
        for answer in cert.certain:
            assert answer in true_top, answer
        # certified-out answers really are not
        for answer in cert.excluded:
            assert answer not in true_top, answer

    def test_resolution_completes_certificate(self):
        q = chain_query(3)
        db = chain_database(3, 80, seed=22, p_max=0.6)
        resolved = certified_top_k(q, db, k=5, resolve_undecided=True)
        assert resolved.is_complete()

    def test_resolved_matches_exact_ranking(self):
        from repro.engine import DissociationEngine
        from repro.ranking import top_k

        q = chain_query(3)
        db = chain_database(3, 60, seed=23, p_max=0.6)
        k = 4
        resolved = certified_top_k(q, db, k=k, resolve_undecided=True)
        exact = DissociationEngine(db).exact(q)
        # modulo genuine ties at the boundary, the certified set matches
        true_top = top_k(exact, k)
        kth = exact[true_top[-1]]
        for answer in resolved.certain[:k]:
            assert exact[answer] >= kth - 1e-9

    def test_random_instances_sound(self):
        from repro.engine import DissociationEngine
        from repro.ranking import top_k

        checked = 0
        for seed in range(15):
            rng = random.Random(seed)
            q = random_query(rng, max_atoms=3, head_vars=1)
            db = random_database_for(q, rng, domain_size=3)
            engine = DissociationEngine(db)
            exact = engine.exact(q)
            if len(exact) < 3:
                continue
            k = 2
            cert = certified_top_k(q, db, k=k)
            true_top = set(top_k(exact, k))
            checked += 1
            for answer in cert.certain:
                # allow exact ties at the boundary
                kth = sorted(exact.values(), reverse=True)[k - 1]
                assert exact[answer] >= kth - 1e-9
        assert checked >= 5
