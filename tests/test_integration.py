"""End-to-end integration tests across the whole stack.

Each scenario drives the public API the way the examples and benchmarks
do: generate a workload, evaluate with several strategies, compare
rankings against exact ground truth.
"""

import math
import random

import pytest

from repro.api import EngineConfig
from repro import (
    DissociationEngine,
    Optimizations,
    ProbabilisticDatabase,
    parse_query,
)
from repro.experiments import run_quality_trial, run_scaling_trial
from repro.ranking import average_precision_at_k
from repro.workloads import (
    TPCHParameters,
    chain_database,
    chain_query,
    filtered_instance,
    star_database,
    star_query,
    tpch_database,
    tpch_query,
)

from .helpers import assert_scores_close


class TestChainPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        q = chain_query(4)
        db = chain_database(4, 250, seed=11, p_max=0.5)
        return q, db

    def test_all_strategies_agree_on_answers(self, setup):
        q, db = setup
        engine = DissociationEngine(db)
        sqlite_engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        answers = engine.answers(q)
        for opts in (
            Optimizations.none(),
            Optimizations(),
            Optimizations.all(),
        ):
            assert set(engine.propagation_score(q, opts)) == answers
            assert set(sqlite_engine.propagation_score(q, opts)) == answers

    def test_upper_bound_and_quality(self, setup):
        q, db = setup
        engine = DissociationEngine(db)
        rho = engine.propagation_score(q)
        exact = engine.exact(q)
        for a in exact:
            assert rho[a] >= exact[a] - 1e-9
        assert average_precision_at_k(rho, exact, k=10) > 0.9

    def test_backends_bitwise_close(self, setup):
        q, db = setup
        memory = DissociationEngine(db).propagation_score(q)
        sqlite = DissociationEngine(db, EngineConfig(backend="sqlite")).propagation_score(q)
        assert_scores_close(memory, sqlite, tolerance=1e-9)


class TestStarPipeline:
    def test_boolean_probability_bounds(self):
        # kept deliberately small: the Boolean 3-star lineage is exactly
        # the hard regime for exact WMC (that hardness is the paper's
        # premise) — n=80 instances already take minutes of Shannon
        # expansion, so ground truth is computed on a 25-row instance
        q = star_query(3)
        db = star_database(3, 25, domain_size=8, seed=12)
        engine = DissociationEngine(db)
        rho = engine.propagation_score(q).get((), 0.0)
        exact = engine.exact(q).get((), 0.0)
        mc = engine.monte_carlo(q, 30_000, seed=0).get((), 0.0)
        assert exact - 1e-9 <= rho
        assert abs(mc - exact) < 0.02

    def test_plan_count_is_factorial(self):
        engine = DissociationEngine(star_database(3, 20, seed=1))
        assert len(engine.minimal_plans(star_query(3))) == 6


class TestTPCHPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        db = tpch_database(scale=0.01, seed=13)
        filtered = filtered_instance(db, TPCHParameters(60, "%re%"))
        return tpch_query(), filtered

    def test_quality_ordering(self, setup):
        q, db = setup
        trial = run_quality_trial(q, db, mc_samples=(100,))
        # Result 3: dissociation ≥ MC(100) ≥ lineage (allowing slack)
        assert trial.ap_dissociation() >= trial.ap_monte_carlo(100) - 0.05
        assert trial.ap_dissociation() >= trial.ap_lineage() - 0.02

    def test_scaling_improves_dissociation(self, setup):
        q, db = setup
        coarse = run_scaling_trial(q, db, factor=0.5)
        fine = run_scaling_trial(q, db, factor=0.02)
        assert (
            fine.ap_scaled_diss_vs_scaled_gt
            >= coarse.ap_scaled_diss_vs_scaled_gt - 0.05
        )

    def test_sqlite_evaluation(self, setup):
        q, db = setup
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        result = engine.evaluate(q, Optimizations.all())
        assert result.plan_count == 2
        assert result.sql is not None
        assert all(0 <= v <= 1 + 1e-9 for v in result.scores.values())


class TestSchemaPipeline:
    def test_deterministic_hub_star(self):
        # star with a deterministic hub: fewer plans, still exact bounds
        q = star_query(2)
        db = star_database(
            2, 50, seed=14, deterministic_tables=frozenset({"R0"})
        )
        engine = DissociationEngine(db)
        plans = engine.minimal_plans(q)
        oblivious = DissociationEngine(db, EngineConfig(use_schema_knowledge=False))
        assert len(plans) <= len(oblivious.minimal_plans(q))
        rho = engine.propagation_score(q).get((), 0.0)
        exact = engine.exact(q).get((), 0.0)
        assert rho >= exact - 1e-9

    def test_scaled_database_pipeline(self):
        q = chain_query(3)
        db = chain_database(3, 150, seed=15, p_max=0.8)
        engine = DissociationEngine(db)
        scaled_engine = DissociationEngine(db.scaled(0.1))
        exact = engine.exact(q)
        scaled_exact = scaled_engine.exact(q)
        assert set(exact) == set(scaled_exact)
        for a in exact:
            assert scaled_exact[a] <= exact[a] + 1e-12


class TestNumericEdgeCases:
    def test_probability_one_tuples(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 1.0)])
        db.add_table("S", [((1, 2), 1.0), ((1, 3), 0.5)])
        db.add_table("T", [((2,), 1.0), ((3,), 1.0)])
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        engine = DissociationEngine(db)
        rho = engine.propagation_score(q)[()]
        exact = engine.exact(q)[()]
        assert rho >= exact - 1e-12
        assert exact == 1.0

    def test_probability_zero_tuples(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.0)])
        db.add_table("S", [((1, 2), 0.9)])
        q = parse_query("q() :- R(x), S(x,y)")
        engine = DissociationEngine(db)
        assert engine.exact(q)[()] == 0.0
        assert engine.propagation_score(q)[()] == 0.0

    def test_tiny_probabilities_stable(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((i,), 1e-12) for i in range(5)])
        db.add_table("S", [((i, j), 1e-12) for i in range(5) for j in range(3)])
        q = parse_query("q() :- R(x), S(x,y)")
        engine = DissociationEngine(db)
        rho = engine.propagation_score(q)[()]
        exact = engine.exact(q)[()]
        assert rho >= exact - 1e-24
        assert not math.isnan(rho)
