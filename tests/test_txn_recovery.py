"""Transactional mutations & durable recovery (PR 8).

Four layers of guarantees:

* **Undo-log rollback** — a raising ``mutate(fn)`` whose writes went
  through the tracked helpers leaves the database *bit-identical*
  (rows, probabilities, per-table epochs); untracked writes degrade to
  the ``touch()`` taint, certified by per-table XOR fingerprints.
* **Warm caches** — after a rollback, zero evictions on any relation
  and repeat queries are served from cache with no new engine
  evaluations, on both backends.
* **Durability** — snapshot + CRC-checksummed journal: committed
  mutations survive a SIGKILL; torn journal tails are truncated;
  checkpoints fold the journal crash-safely.
* **Differential interleavings** (hypothesis) — any mix of tracked
  mutations, failing mutations, and queries leaves the database equal
  to a twin that never saw the failing calls.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import connect
from repro.api import EngineConfig
from repro.db import (
    DurableStore,
    MutationOutcome,
    ProbabilisticDatabase,
    load_snapshot,
    write_snapshot,
)
from repro.service import DissociationService, FaultInjector
from repro.workloads import chain_database, chain_query

BACKENDS = ("memory", "sqlite")


def small_db() -> ProbabilisticDatabase:
    db = ProbabilisticDatabase()
    db.add_table("R", [((1, 2), 0.5), ((3, 4), 0.25)])
    db.add_table("S", [((1,), 0.9), ((3,), 0.8)])
    return db


def state_of(db: ProbabilisticDatabase) -> dict:
    return {
        t.name: (dict(t.rows), t.epoch, t.schema) for t in db
    }


# ----------------------------------------------------------------------
# undo-log rollback
# ----------------------------------------------------------------------
class TestRollback:
    def test_tracked_failure_is_bit_identical(self):
        db = small_db()
        before = state_of(db)
        version = db.version

        def fn(d):
            d.insert("R", (5, 6), 0.75)           # new row
            d.insert("R", (1, 2), 0.1)            # overwrite
            d.update_probability("S", (1,), 0.2)
            d.delete("R", (3, 4))
            d.add_table("T", [((7,), 0.3)])
            d.drop_table("S")
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError, match="abort"):
            db.mutate(fn)
        assert state_of(db) == before
        assert db.version == version
        outcome = db.last_mutation
        assert outcome == MutationOutcome(
            committed=False, rolled_back=True, tracked_ops=6
        )

    def test_rollback_restores_dropped_table_identity(self):
        db = small_db()
        epoch = db.table("S").epoch

        def fn(d):
            d.drop_table("S")
            d.add_table("S", [((1,), 0.9), ((3,), 0.8)])  # same content!
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError):
            db.mutate(fn)
        # the restored S is the *original incarnation*: same creation
        # stamp, not a same-named lookalike under a fresh epoch
        assert db.table("S").epoch == epoch

    def test_mutate_returns_fn_result_and_commits(self):
        db = small_db()
        version = db.version
        assert db.mutate(lambda d: d.delete("R", (3, 4))) == 0.25
        assert (3, 4) not in db.table("R").rows
        assert db.version != version
        assert db.last_mutation.committed
        assert db.last_mutation.tracked_ops == 1

    def test_untracked_failure_taints(self):
        db = small_db()
        epochs = db.table_epochs()

        def fn(d):
            d.table("R").insert((9, 9), 0.5)  # around the tracked API
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError):
            db.mutate(fn)
        assert db.last_mutation.tainted
        assert all(
            db.table_epoch(name) != old for name, old in epochs.items()
        )
        # the half-applied write survives (taint marks it, nothing hides it)
        assert (9, 9) in db.table("R").rows

    def test_untracked_raw_row_poke_is_undetectable_documented(self):
        # the documented contract boundary: writes through Table.insert
        # are caught by the fingerprint; raw dict pokes are not
        db = small_db()

        def fn(d):
            d.table("R").insert((9, 9), 0.5)
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError):
            db.mutate(fn)
        assert db.last_mutation.tainted

    def test_untracked_success_commits_with_moved_epoch(self):
        db = small_db()
        epoch = db.table("R").epoch
        db.mutate(lambda d: d.table("R").insert((9, 9), 0.5))
        assert db.last_mutation.committed
        assert db.last_mutation.tracked_ops == 0
        assert db.table("R").epoch != epoch

    def test_mixed_tracked_then_untracked_failure_taints(self):
        db = small_db()

        def fn(d):
            d.insert("R", (5, 6), 0.75)           # tracked
            d.table("S").insert((7,), 0.1)        # untracked
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError):
            db.mutate(fn)
        assert db.last_mutation.tainted
        # the tracked write *was* undone before the certificate failed
        assert (5, 6) not in db.table("R").rows

    def test_nested_mutate_raises(self):
        db = small_db()
        with pytest.raises(RuntimeError, match="already in progress"):
            db.mutate(lambda d: d.mutate(lambda e: None))

    def test_injected_rollback_fault_degrades_to_taint(self):
        db = small_db()
        faults = FaultInjector()
        faults.on_call("rollback", 1, RuntimeError("chaos: undo lost"))
        epochs = db.table_epochs()

        def fn(d):
            d.insert("R", (5, 6), 0.75)
            raise ValueError("abort")

        with pytest.raises(ValueError):
            db.mutate(fn, faults=faults)
        assert db.last_mutation.tainted
        assert all(
            db.table_epoch(name) != old for name, old in epochs.items()
        )

    def test_fingerprint_ignores_insertion_order(self):
        a = ProbabilisticDatabase()
        a.add_table("R", [((1,), 0.5), ((2,), 0.25)])
        b = ProbabilisticDatabase()
        b.add_table("R", [((2,), 0.25), ((1,), 0.5)])
        assert a.table("R").fingerprint == b.table("R").fingerprint


# ----------------------------------------------------------------------
# warm caches across rollbacks (the acceptance counters, both backends)
# ----------------------------------------------------------------------
class TestCachesStayWarm:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_evictions_and_cached_repeat_serial(self, backend):
        db = chain_database(3, 12, seed=5)
        q = chain_query(3)
        with connect(db, EngineConfig(backend=backend)) as session:
            first = session.evaluate(q)
            evaluations = session.engine.evaluation_count
            with pytest.raises(RuntimeError):
                session.mutate(self._failing_tracked)
            again = session.evaluate(q)
            assert again.cached and again.epoch == first.epoch
            assert session.engine.evaluation_count == evaluations
            stats = session.results.stats()
            assert stats["evictions"] == 0
            # the engine's own epoch-diffing caches saw no epoch move
            assert db.last_mutation.rolled_back

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_evictions_concurrent_service(self, backend):
        db = chain_database(3, 12, seed=5)
        q = chain_query(3)
        with connect(
            db, EngineConfig(backend=backend), concurrent=True
        ) as session:
            first = session.evaluate(q)
            with pytest.raises(RuntimeError):
                session.mutate(self._failing_tracked)
            again = session.evaluate(q)
            assert again.cached and again.epoch == first.epoch
            assert session.results.stats()["evictions"] == 0
            stats = session.service.stats()
            assert stats["rolled_back_mutations"] == 1
            assert stats["tainted_mutations"] == 0

    @staticmethod
    def _failing_tracked(d):
        d.insert("R1", (999_991, 999_992), 0.5)
        raise RuntimeError("abort")

    def test_sqlite_refresh_is_noop_after_rollback(self):
        db = small_db()
        from repro.db import SQLiteBackend

        backend = SQLiteBackend(db)  # materializes the snapshot
        with pytest.raises(RuntimeError):
            db.mutate(self._fail_after_insert)
        assert backend.refresh() == frozenset()

    @staticmethod
    def _fail_after_insert(d):
        d.insert("R", (5, 6), 0.75)
        raise RuntimeError("abort")


# ----------------------------------------------------------------------
# durability: snapshot + journal
# ----------------------------------------------------------------------
class TestDurability:
    def test_round_trip_preserves_rows_epochs_schema(self, tmp_path):
        db = ProbabilisticDatabase.open(tmp_path / "store")
        db.mutate(lambda d: d.add_table("R", [((1, 2), 0.5)]))
        db.mutate(lambda d: d.insert("R", (3, 4), 0.25))
        db.mutate(lambda d: d.update_probability("R", (1, 2), 0.125))
        db.mutate(lambda d: d.delete("R", (3, 4)))
        expected = state_of(db)
        db.close()
        reopened = ProbabilisticDatabase.open(tmp_path / "store")
        assert state_of(reopened) == expected
        reopened.close()

    def test_snapshot_preserves_schema_and_fds(self, tmp_path):
        from repro.core.fds import ColumnFD

        db = ProbabilisticDatabase()
        db.add_table(
            "R",
            [((1, "a"), 1.0)],
            deterministic=True,
            columns=("k", "v"),
            fds=(ColumnFD((0,), (1,)),),
        )
        write_snapshot(db, tmp_path / "snap.json")
        again = load_snapshot(tmp_path / "snap.json")
        assert state_of(again) == state_of(db)

    def test_snapshot_rejects_unknown_version(self, tmp_path):
        from repro.db import JournalError

        path = tmp_path / "snap.json"
        path.write_text('{"format": "repro-snapshot", "version": 99}')
        with pytest.raises(JournalError, match="version"):
            load_snapshot(path)

    def test_failed_mutation_is_not_journaled(self, tmp_path):
        db = ProbabilisticDatabase.open(tmp_path / "store")
        db.mutate(lambda d: d.add_table("R", [((1,), 0.5)]))

        def fn(d):
            d.insert("R", (2,), 0.25)
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError):
            db.mutate(fn)
        db.close()
        reopened = ProbabilisticDatabase.open(tmp_path / "store")
        assert dict(reopened.table("R").rows) == {(1,): 0.5}
        reopened.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        store_dir = tmp_path / "store"
        db = ProbabilisticDatabase.open(store_dir)
        db.mutate(lambda d: d.add_table("R", [((1,), 0.5)]))
        db.mutate(lambda d: d.insert("R", (2,), 0.25))
        db.close()
        journal = store_dir / DurableStore.JOURNAL
        intact = journal.read_bytes()
        # a half-written record: valid-looking hex prefix, no newline
        journal.write_bytes(intact + b'0badc0de {"op":"insert","rel":"R"')
        reopened = ProbabilisticDatabase.open(store_dir)
        assert dict(reopened.table("R").rows) == {(1,): 0.5, (2,): 0.25}
        assert reopened._durability.last_recovery["invalid_records"] == 1
        assert journal.read_bytes() == intact  # truncated back
        reopened.close()

    def test_corrupt_checksum_drops_tail(self, tmp_path):
        store_dir = tmp_path / "store"
        db = ProbabilisticDatabase.open(store_dir)
        db.mutate(lambda d: d.add_table("R", [((1,), 0.5)]))
        db.close()
        journal = store_dir / DurableStore.JOURNAL
        good = journal.read_bytes()
        lines = good.splitlines(keepends=True)
        # flip a byte inside the payload of a fresh appended group
        db = ProbabilisticDatabase.open(store_dir)
        db.mutate(lambda d: d.insert("R", (2,), 0.25))
        db.close()
        raw = journal.read_bytes()
        tail_start = len(good)
        corrupted = (
            raw[:tail_start]
            + raw[tail_start:].replace(b'"rel"', b'"reX"', 1)
        )
        journal.write_bytes(corrupted)
        reopened = ProbabilisticDatabase.open(store_dir)
        # the corrupted committed group is gone; the first group survives
        assert dict(reopened.table("R").rows) == {(1,): 0.5}
        assert len(lines) >= 2
        reopened.close()

    def test_uncommitted_group_is_dropped(self, tmp_path):
        store_dir = tmp_path / "store"
        db = ProbabilisticDatabase.open(store_dir)
        db.mutate(lambda d: d.add_table("R", [((1,), 0.5)]))
        db.close()
        journal = store_dir / DurableStore.JOURNAL
        raw = journal.read_bytes()
        # replay the op records of the committed group *without* the
        # trailing commit marker: a crash between ops and commit
        lines = raw.splitlines(keepends=True)
        journal.write_bytes(raw + lines[0])
        reopened = ProbabilisticDatabase.open(store_dir)
        assert dict(reopened.table("R").rows) == {(1,): 0.5}
        assert reopened._durability.last_recovery["uncommitted_ops"] == 1
        reopened.close()

    def test_checkpoint_folds_journal_and_bounds_replay(self, tmp_path):
        db = ProbabilisticDatabase.open(
            tmp_path / "store", checkpoint_every=4
        )
        db.mutate(lambda d: d.add_table("R", [((0,), 0.5)]))
        for i in range(1, 8):
            db.mutate(lambda d, i=i: d.insert("R", (i,), 0.5))
        expected = state_of(db)
        assert db._durability.stats()["ops_since_checkpoint"] < 4
        db.close()
        reopened = ProbabilisticDatabase.open(tmp_path / "store")
        assert state_of(reopened) == expected
        # recovery replayed only the post-checkpoint suffix
        assert reopened._durability.last_recovery["ops_replayed"] < 4
        reopened.close()

    def test_crash_between_snapshot_and_truncate_no_double_apply(
        self, tmp_path
    ):
        store_dir = tmp_path / "store"
        db = ProbabilisticDatabase.open(store_dir)
        db.mutate(lambda d: d.add_table("R", [((1,), 0.5)]))
        db.mutate(lambda d: d.delete("R", (1,)))
        db.mutate(lambda d: d.insert("R", (2,), 0.25))
        # simulate the torn checkpoint: snapshot written (with
        # committed_ops), journal NOT truncated
        write_snapshot(
            db,
            store_dir / DurableStore.SNAPSHOT,
            committed_ops=db._durability._committed_ops,
        )
        expected = state_of(db)
        db.close()
        reopened = ProbabilisticDatabase.open(store_dir)
        # replaying the journal on top of the snapshot must skip every
        # already-folded op — a naive replay would re-delete (1,) and
        # crash or double-insert
        assert state_of(reopened) == expected
        assert reopened._durability.last_recovery["ops_replayed"] == 0
        reopened.close()

    def test_journal_fault_rolls_memory_back(self, tmp_path):
        db = ProbabilisticDatabase.open(tmp_path / "store")
        db.mutate(lambda d: d.add_table("R", [((1,), 0.5)]))
        faults = FaultInjector()
        faults.on_call("journal", 1, OSError("chaos: disk full"))
        before = state_of(db)
        with pytest.raises(OSError):
            db.mutate(lambda d: d.insert("R", (2,), 0.25), faults=faults)
        # memory rolled back too: memory and disk never diverge
        assert state_of(db) == before
        assert db.last_mutation.rolled_back
        db.close()
        reopened = ProbabilisticDatabase.open(tmp_path / "store")
        assert state_of(reopened) == before
        reopened.close()

    def test_save_makes_in_memory_db_durable(self, tmp_path):
        db = small_db()
        assert not db.durable
        db.save(tmp_path / "store")
        assert db.durable
        db.mutate(lambda d: d.insert("R", (5, 6), 0.75))
        expected = state_of(db)
        db.close()
        reopened = ProbabilisticDatabase.open(tmp_path / "store")
        assert state_of(reopened) == expected
        reopened.close()

    def test_autocommit_outside_mutate(self, tmp_path):
        db = ProbabilisticDatabase.open(tmp_path / "store")
        db.add_table("R", [((1,), 0.5)])
        db.insert("R", (2,), 0.25)
        expected = state_of(db)
        db.close()
        reopened = ProbabilisticDatabase.open(tmp_path / "store")
        assert state_of(reopened) == expected
        reopened.close()

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            DurableStore(tmp_path / "s", fsync="sometimes")
        store = DurableStore(tmp_path / "s2", fsync="off")
        assert store.fsync == "off"

    def test_fsync_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_FSYNC", "off")
        assert DurableStore(tmp_path / "s").fsync == "off"
        monkeypatch.delenv("REPRO_JOURNAL_FSYNC")
        assert DurableStore(tmp_path / "s").fsync == "commit"

    def test_connect_path_owns_and_recovers(self, tmp_path):
        with connect(path=tmp_path / "store") as session:
            session.mutate(
                lambda d: d.add_table("R", [((1, 2), 0.5), ((2, 3), 0.25)])
            )
            session.mutate(lambda d: d.insert("R", (3, 4), 0.75))
            expected = {
                t.name: dict(t.rows) for t in session.db
            }
        with connect(path=tmp_path / "store") as session:
            assert {t.name: dict(t.rows) for t in session.db} == expected
            assert session.evaluate("q(x) :- R(x, y)").scores

    def test_connect_rejects_db_and_path(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            connect(small_db(), path=tmp_path / "s")
        with pytest.raises(ValueError, match="path"):
            connect(small_db(), fsync="off")
        with pytest.raises(ValueError, match="db or a path"):
            connect()


# ----------------------------------------------------------------------
# SIGKILL crash recovery (subprocess harness)
# ----------------------------------------------------------------------
WRITER = textwrap.dedent(
    """
    import sys
    from repro.db import ProbabilisticDatabase

    store, = sys.argv[1:]
    db = ProbabilisticDatabase.open(store, fsync="commit")
    if "R" not in db.table_names:
        db.mutate(lambda d: d.add_table("R", [], arity=1))
    start = max((row[0] for row in db.table("R").rows), default=-1) + 1
    for i in range(start, start + 100000):
        db.mutate(lambda d, i=i: d.insert("R", (i,), 0.5))
        # the ack contract: once i is printed, (i,) must survive SIGKILL
        print(i, flush=True)
    """
)


@pytest.mark.skipif(os.name != "posix", reason="needs SIGKILL")
class TestSigkillRecovery:
    def _run_and_kill(self, store: Path) -> int:
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_JOURNAL_FSYNC", None)  # the writer passes fsync=
        proc = subprocess.Popen(
            [sys.executable, "-c", WRITER, str(store)],
            stdout=subprocess.PIPE,
            cwd=Path(__file__).resolve().parent.parent,
            env=env,
            text=True,
        )
        acked = -1
        deadline = time.monotonic() + 60
        # read a few acks, then kill mid-stream without warning
        while acked < 5 and time.monotonic() < deadline:
            line = proc.stdout.readline()
            if line:
                acked = int(line)
        proc.kill()  # SIGKILL: no atexit, no flush, no goodbye
        # drain acks the child printed before dying — each one is a
        # mutation whose mutate() returned, i.e. a durability promise
        tail, _ = proc.communicate(timeout=30)
        for line in tail.split():
            acked = max(acked, int(line))
        assert proc.returncode == -signal.SIGKILL
        assert acked >= 5
        return acked

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reopens_to_last_committed_mutation(self, tmp_path, backend):
        store = tmp_path / "store"
        acked = self._run_and_kill(store)
        db = ProbabilisticDatabase.open(store)
        rows = db.table("R").rows
        # every acked commit survived ...
        for i in range(acked + 1):
            assert (i,) in rows, f"acked row {i} lost"
        # ... and nothing torn leaked in: rows are exactly a prefix
        # 0..n with n >= acked (trailing commits may have raced the kill)
        assert set(rows) == {(i,) for i in range(len(rows))}
        assert all(p == 0.5 for p in rows.values())
        # the recovered state is served identically by both backends
        with connect(db, EngineConfig(backend=backend)) as session:
            scores = session.evaluate("q() :- R(x)").scores
            assert scores  # boolean query over recovered rows
        db.close()

    def test_second_crash_cycle_continues_cleanly(self, tmp_path):
        store = tmp_path / "store"
        first = self._run_and_kill(store)
        second = self._run_and_kill(store)
        assert second > first  # resumed past the first crash
        db = ProbabilisticDatabase.open(store)
        assert set(db.table("R").rows) == {
            (i,) for i in range(len(db.table("R").rows))
        }
        assert len(db.table("R").rows) >= second + 1
        db.close()


# ----------------------------------------------------------------------
# hypothesis: interleavings vs. a never-failed twin
# ----------------------------------------------------------------------
def _op_strategy():
    row = st.integers(min_value=0, max_value=9)
    return st.lists(
        st.one_of(
            st.tuples(st.just("insert"), row, row),
            st.tuples(st.just("delete"), row, row),
            st.tuples(st.just("update"), row, row),
            st.tuples(st.just("fail_insert"), row, row),
            st.tuples(st.just("fail_multi"), row, row),
            st.tuples(st.just("query"), st.just(0), st.just(0)),
        ),
        min_size=1,
        max_size=12,
    )


class TestInterleavings:
    @given(ops=_op_strategy())
    @settings(max_examples=40, deadline=None)
    def test_bit_identity_with_never_failed_twin(self, ops):
        db = ProbabilisticDatabase()
        db.add_table("R", [((i, i + 1), 0.5) for i in range(4)])
        db.add_table("Z", [((1,), 0.9)])  # never touched
        twin = ProbabilisticDatabase()
        twin.add_table("R", [((i, i + 1), 0.5) for i in range(4)])
        twin.add_table("Z", [((1,), 0.9)])
        z_epoch = db.table("Z").epoch

        with connect(db, result_cache_size=None) as session:
            for kind, a, b in ops:
                if kind == "query":
                    session.evaluate("q(x) :- R(x, y)")
                    continue
                apply = _APPLY[kind]
                failing = kind.startswith("fail_")
                try:
                    session.mutate(lambda d: apply(d, a, b))
                except _Abort:
                    assert db.last_mutation.rolled_back
                except KeyError:
                    # op invalid on current state (delete/update of a
                    # missing row) — rolled back on db, skipped on twin
                    assert db.last_mutation.rolled_back
                    continue
                if not failing:
                    try:
                        apply(twin, a, b)
                    except (_Abort, KeyError):
                        pass
            # bit-identity: rows AND per-table epoch of the relation
            # the failures touched... epochs can differ on R (twin saw
            # fewer counter bumps), so compare contents + fingerprints
            assert dict(db.table("R").rows) == dict(twin.table("R").rows)
            assert db.table("R").fingerprint == twin.table("R").fingerprint
            # the untouched relation's epoch NEVER moved: zero
            # invalidation pressure on Z from any failed mutation
            assert db.table("Z").epoch == z_epoch


class _Abort(Exception):
    pass


def _apply_insert(d, a, b):
    d.insert("R", (a, b), 0.5)


def _apply_delete(d, a, b):
    d.delete("R", (a, b))


def _apply_update(d, a, b):
    d.update_probability("R", (a, b), 0.75)


def _apply_fail_insert(d, a, b):
    d.insert("R", (a, b), 0.5)
    raise _Abort()


def _apply_fail_multi(d, a, b):
    d.insert("R", (a, b), 0.5)
    d.insert("R", (b, a), 0.25)
    d.delete("R", (a, b))
    raise _Abort()


_APPLY = {
    "insert": _apply_insert,
    "delete": _apply_delete,
    "update": _apply_update,
    "fail_insert": _apply_fail_insert,
    "fail_multi": _apply_fail_multi,
}
