"""Edge-case tests for the SQLite backend and SQL generation."""

import random

from repro.api import EngineConfig
from repro.core import minimal_plans, parse_query
from repro.db import ProbabilisticDatabase, SQLiteBackend
from repro.engine import DissociationEngine, SQLCompiler, plan_scores

from .helpers import assert_backends_agree, assert_scores_close


class TestValueHandling:
    def _roundtrip(self, rows, query_text):
        db = ProbabilisticDatabase()
        arity = len(rows[0][0])
        db.add_table("R", rows, arity=arity)
        db.add_table("S", [((rows[0][0][0],), 0.5)], arity=1)
        q = parse_query(query_text)
        return assert_backends_agree(q, db)

    def test_string_values_with_quotes(self):
        rows = [(("o'brien", 1), 0.5), (('say "hi"', 2), 0.5)]
        self._roundtrip(rows, "q(x) :- R(x, y), S(x)")

    def test_unicode_values(self):
        rows = [(("héllo wörld", 1), 0.5), (("日本語", 2), 0.25)]
        self._roundtrip(rows, "q(x) :- R(x, y), S(x)")

    def test_negative_and_float_values(self):
        rows = [((-3, 1), 0.5), ((2.5, 2), 0.25)]
        self._roundtrip(rows, "q(x) :- R(x, y), S(x)")

    def test_constant_with_quote_in_query(self):
        # constants containing quotes can't be written in the text syntax,
        # but programmatic atoms must still compile to escaped SQL
        from repro.core import Atom, ConjunctiveQuery, Constant, Variable

        db = ProbabilisticDatabase()
        db.add_table("R", [(("o'brien", 1), 0.5), (("smith", 2), 0.5)])
        y = Variable("y")
        q = ConjunctiveQuery(
            [Atom("R", (Constant("o'brien"), y))], head=[y]
        )
        scores = assert_backends_agree(q, db)
        assert scores == {(1,): 0.5}

    def test_probability_zero_and_one(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.0), ((2,), 1.0)])
        db.add_table("S", [((1, 5), 1.0), ((2, 5), 0.5)])
        q = parse_query("q() :- R(x), S(x,y)")
        assert_backends_agree(q, db)


class TestEmptyInputs:
    def test_empty_table(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [], arity=1)
        db.add_table("S", [((1, 2), 0.5)])
        q = parse_query("q() :- R(x), S(x,y)")
        for backend in ("memory", "sqlite"):
            engine = DissociationEngine(db, EngineConfig(backend=backend))
            assert engine.propagation_score(q) == {}

    def test_boolean_no_answer(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((2, 3), 0.5)])
        q = parse_query("q() :- R(x), S(x,y)")
        sqlite = DissociationEngine(db, EngineConfig(backend="sqlite"))
        scores = sqlite.propagation_score(q)
        # the Boolean aggregate returns 0 probability (false), or no row —
        # either way nothing above 0
        assert scores.get((), 0.0) == 0.0


class TestCompilerDetails:
    def test_view_names_unique(self):
        from repro.core.singleplan import single_plan
        from repro.workloads import chain_query

        q = chain_query(6)
        db = ProbabilisticDatabase()
        for i in range(1, 7):
            db.add_table(f"R{i}", [((1, 1), 0.5)])
        compiler = SQLCompiler(db.schema, reuse_views=True)
        sql = compiler.compile(single_plan(q), q)
        names = [
            line.split()[0]
            for line in sql.splitlines()
            if line.startswith("v") and " AS (" in line
        ]
        assert len(names) == len(set(names))

    def test_no_views_without_reuse_for_plain_plan(self):
        q = parse_query("q() :- R(x), S(x,y)")
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((1, 2), 0.5)])
        compiler = SQLCompiler(db.schema, reuse_views=False)
        (plan,) = minimal_plans(q)
        sql = compiler.compile(plan, q)
        with SQLiteBackend(db) as backend:
            rows = backend.execute(sql)
            assert len(rows) == 1

    def test_column_named_like_keyword(self):
        db = ProbabilisticDatabase()
        db.add_table(
            "R", [((1, 2), 0.5)], columns=("select", "group")
        )
        db.add_table("S", [((2,), 0.5)], columns=("order",))
        q = parse_query("q() :- R(x, y), S(y)")
        assert_backends_agree(q, db)

    def test_semijoin_tables_cleaned_up_between_queries(self):
        rng = random.Random(1)
        db = ProbabilisticDatabase()
        db.add_table("R", [((i,), 0.5) for i in range(6)])
        db.add_table("S", [((i, i + 1), 0.5) for i in range(4)])
        q = parse_query("q() :- R(x), S(x,y)")
        from repro.engine import Optimizations

        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        first = engine.propagation_score(q, Optimizations.all())
        second = engine.propagation_score(q, Optimizations.all())
        assert_scores_close(first, second)
