"""Tests for the plan AST (Definitions 4 and 5)."""

import pytest

from repro.core import (
    Atom,
    Join,
    MinPlan,
    Project,
    Scan,
    Variable,
    parse_query,
    plan_signature,
    safe_plan,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


def rxy():
    return Scan(Atom("R", (x, y)))


def syz():
    return Scan(Atom("S", (y, z)))


class TestScan:
    def test_head_is_own_variables(self):
        assert rxy().head_variables == {x, y}

    def test_dissociated_vars_not_in_head(self):
        s = Scan(Atom("R", (x,), dissociated=[y]))
        assert s.head_variables == {x}

    def test_atoms(self):
        assert rxy().atoms() == (Atom("R", (x, y)),)


class TestProject:
    def test_projected_away(self):
        p = Project([x], rxy())
        assert p.projected_away == {y}
        assert p.head_variables == {x}

    def test_rejects_foreign_variables(self):
        with pytest.raises(ValueError):
            Project([z], rxy())

    def test_boolean_projection(self):
        p = Project([], rxy())
        assert p.head_variables == frozenset()


class TestJoin:
    def test_head_is_union(self):
        j = Join([rxy(), syz()])
        assert j.head_variables == {x, y, z}
        assert j.join_variables == {x, y, z}

    def test_requires_two_children(self):
        with pytest.raises(ValueError):
            Join([rxy()])

    def test_order_insensitive_equality(self):
        assert Join([rxy(), syz()]) == Join([syz(), rxy()])
        assert hash(Join([rxy(), syz()])) == hash(Join([syz(), rxy()]))


class TestMinPlan:
    def test_requires_same_heads(self):
        with pytest.raises(ValueError, match="head"):
            MinPlan([Project([x], rxy()), Project([y], rxy())])

    def test_requires_same_relations(self):
        with pytest.raises(ValueError, match="relations"):
            MinPlan([Project([y], rxy()), Project([y], syz())])

    def test_atoms_counted_once(self):
        m = MinPlan([Project([x], rxy()), Project([x], rxy())])
        # identical children collapse structurally; atoms from one branch
        assert len(m.atoms()) == 1

    def test_contains_min(self):
        m = MinPlan([Project([x], rxy()), Project([x], rxy())])
        assert m.contains_min()
        assert not rxy().contains_min()


class TestSafety:
    def test_safe_plan_is_safe(self):
        q = parse_query("q() :- R(x), S(x,y)")
        assert safe_plan(q).is_safe()

    def test_unsafe_join_detected(self):
        # join children with different existential heads (Boolean context)
        j = Join([Scan(Atom("R", (x,))), syz()])
        assert not j.is_safe(head=frozenset())

    def test_join_safe_modulo_head_variables(self):
        # children differ only on the plan's free variables → safe (Def. 5
        # with head variables as constants); this is the paper's P1 shape
        j = Join([Scan(Atom("R", (x,))), syz()])
        assert j.is_safe(head=frozenset([x, y, z]))

    def test_scan_is_safe(self):
        assert rxy().is_safe()


class TestStructure:
    def test_walk_counts_nodes(self):
        p = Project([x], Join([rxy(), syz()]))
        assert p.count_nodes() == 4

    def test_query_reconstruction(self):
        q = parse_query("q(x) :- R(x,y), S(y,z)")
        p = Project([x], Join([rxy(), syz()]))
        assert p.query() == q

    def test_signature(self):
        p1 = Project([y], Join([rxy(), syz()]))
        rels, head = plan_signature(p1)
        assert rels == {"R", "S"}
        assert head == {y}

    def test_pretty_renders_tree(self):
        p = Project([x], Join([rxy(), syz()]))
        text = p.pretty()
        assert "π" in text and "⋈" in text and "R(x, y)" in text
