"""Tests for safe plans, conservativity, and the schema dichotomy."""

import random

import pytest

from repro.api import EngineConfig
from repro.core import (
    ColumnFD,
    UnsafeQueryError,
    is_hierarchical,
    is_safe,
    is_safe_with_schema,
    minimal_plans,
    parse_query,
    safe_plan,
    safe_plan_with_schema,
)
from repro.engine import DissociationEngine, plan_scores
from repro.workloads import chain_query

from .helpers import random_database_for, random_query


class TestSafePlan:
    def test_paper_example_q1(self):
        # q1(z) :- R(z,x), S(x,y), K(x,y) has plan π_z(R ⋈_x π_x(S ⋈ K))
        q = parse_query("q1(z) :- R(z,x), S(x,y), K(x,y)")
        plan = safe_plan(q)
        assert plan.is_safe()
        assert plan.head_variables == q.head

    def test_unsafe_raises(self):
        with pytest.raises(UnsafeQueryError):
            safe_plan(parse_query("q() :- R(x), S(x,y), T(y)"))

    def test_single_atom(self):
        q = parse_query("q(x) :- R(x, y)")
        plan = safe_plan(q)
        assert plan.head_variables == q.head

    def test_safe_plan_equals_unique_minimal_plan(self):
        rng = random.Random(3)
        checked = 0
        for _ in range(300):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            if not is_hierarchical(q):
                continue
            checked += 1
            (only,) = minimal_plans(q)
            assert safe_plan(q) == only, str(q)
        assert checked > 50

    def test_safe_plan_score_is_exact(self):
        """Proposition 6 (1): score(P) = P(q) for safe plans."""
        rng = random.Random(8)
        checked = 0
        for _ in range(120):
            q = random_query(rng, max_atoms=3, head_vars=rng.randint(0, 1))
            if not is_hierarchical(q):
                continue
            checked += 1
            db = random_database_for(q, rng)
            engine = DissociationEngine(db)
            exact = engine.exact(q)
            scores = plan_scores(safe_plan(q), q, db)
            assert set(scores) == set(exact)
            for answer in exact:
                assert abs(scores[answer] - exact[answer]) < 1e-9, str(q)
        assert checked > 20


class TestConservativity:
    """If q is safe (possibly only with schema knowledge), the engine
    returns its exact probability."""

    def test_plain_safe_query(self):
        rng = random.Random(21)
        q = parse_query("q() :- R(x), S(x,y)")
        db = random_database_for(q, rng)
        engine = DissociationEngine(db)
        rho = engine.propagation_score(q)[()]
        exact = engine.exact(q)[()]
        assert abs(rho - exact) < 1e-9

    def test_deterministic_relation_makes_exact(self):
        # q :- R(x), S(x,y), Td(y) is safe with T deterministic
        rng = random.Random(22)
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        db = random_database_for(q, rng, deterministic=frozenset({"T"}))
        engine = DissociationEngine(db)
        assert engine.is_safe(q)
        rho = engine.propagation_score(q)[()]
        exact = engine.exact(q)[()]
        assert abs(rho - exact) < 1e-9

    def test_two_deterministic_relations(self):
        rng = random.Random(23)
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        db = random_database_for(
            q, rng, deterministic=frozenset({"R", "T"})
        )
        engine = DissociationEngine(db)
        assert engine.is_safe(q)
        assert abs(
            engine.propagation_score(q)[()] - engine.exact(q)[()]
        ) < 1e-9

    def test_fd_satisfying_instance_exact(self):
        # data satisfying S: x→y; the FD-aware single plan is exact
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        db = __import__("repro.db", fromlist=["ProbabilisticDatabase"]).ProbabilisticDatabase()
        rng = random.Random(24)
        db.add_table("R", [((i,), rng.uniform(0.1, 0.9)) for i in range(1, 5)])
        db.add_table(
            "S",
            [((i, i % 3), rng.uniform(0.1, 0.9)) for i in range(1, 5)],
            fds=[ColumnFD((0,), (1,))],
        )
        db.add_table("T", [((j,), rng.uniform(0.1, 0.9)) for j in range(3)])
        engine = DissociationEngine(db)
        assert engine.is_safe(q)
        assert abs(
            engine.propagation_score(q)[()] - engine.exact(q)[()]
        ) < 1e-9

    def test_schema_knowledge_can_be_disabled(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        db = random_database_for(
            q, random.Random(25), deterministic=frozenset({"T"})
        )
        aware = DissociationEngine(db, EngineConfig(use_schema_knowledge=True))
        oblivious = DissociationEngine(db, EngineConfig(use_schema_knowledge=False))
        assert len(aware.minimal_plans(q)) == 1
        assert len(oblivious.minimal_plans(q)) == 2
        # both still compute the same (exact) value on this instance
        assert abs(
            aware.propagation_score(q)[()]
            - oblivious.propagation_score(q)[()]
        ) < 1e-9


class TestSchemaDichotomy:
    def test_is_safe_with_schema(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        assert not is_safe(q)
        assert is_safe_with_schema(q, deterministic={"T"})
        assert is_safe_with_schema(q, fds={"S": [ColumnFD((0,), (1,))]})
        assert not is_safe_with_schema(q)

    def test_safe_plan_with_schema(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        plan = safe_plan_with_schema(q, deterministic={"T"})
        assert {a.relation for a in plan.atoms()} == {"R", "S", "T"}
        with pytest.raises(UnsafeQueryError):
            safe_plan_with_schema(q)

    def test_chain_queries_unsafe_with_no_knowledge(self):
        for k in (3, 4, 5):
            assert not is_safe_with_schema(chain_query(k))
