"""Shared test utilities: random queries, random databases, comparisons,
and the cross-backend differential harness.

Used both by plain unit tests and by the hypothesis strategies in the
property-based suites.
"""

from __future__ import annotations

import itertools
import random

from repro.api import EngineConfig, Session
from repro.core import Atom, ConjunctiveQuery, Variable
from repro.core.minplans import minimal_plans
from repro.core.singleplan import single_plan
from repro.db import ProbabilisticDatabase
from repro.engine import (
    DissociationEngine,
    Optimizations,
    plan_scores_reference,
    reduce_database,
)

__all__ = [
    "ALL_OPTIMIZATION_COMBOS",
    "random_query",
    "random_database_for",
    "boolean",
    "close",
    "assert_scores_close",
    "reference_scores",
    "assert_backends_agree",
]

#: Every combination of the three Sec. 4 optimizations.
ALL_OPTIMIZATION_COMBOS = tuple(
    Optimizations(single_plan=sp, reuse_views=rv, semijoin=sj)
    for sp, rv, sj in itertools.product((False, True), repeat=3)
)


def boolean(query: ConjunctiveQuery) -> ConjunctiveQuery:
    return query.with_head(())


def random_query(
    rng: random.Random,
    max_atoms: int = 4,
    max_vars: int = 4,
    max_arity: int = 3,
    head_vars: int = 0,
) -> ConjunctiveQuery:
    """A random connected-or-not self-join-free query.

    Every variable is used at least once; atoms draw 1..max_arity variables
    with replacement (repeated variables within an atom are allowed).
    """
    n_atoms = rng.randint(1, max_atoms)
    n_vars = rng.randint(1, max_vars)
    variables = [Variable(f"x{i}") for i in range(n_vars)]
    atoms = []
    for i in range(n_atoms):
        arity = rng.randint(1, max_arity)
        terms = tuple(rng.choice(variables) for _ in range(arity))
        atoms.append(Atom(f"R{i}", terms))
    # ensure every variable occurs somewhere: retarget unused ones
    used = set().union(*(a.own_variables for a in atoms))
    variables = [v for v in variables if v in used]
    if not variables:
        variables = sorted(used) or [Variable("x0")]
    head = tuple(
        rng.sample(variables, min(head_vars, len(variables)))
        if head_vars
        else ()
    )
    return ConjunctiveQuery(atoms, head)


def random_database_for(
    query: ConjunctiveQuery,
    rng: random.Random,
    domain_size: int = 3,
    fill: float = 0.7,
    p_max: float = 0.8,
    deterministic: frozenset[str] = frozenset(),
) -> ProbabilisticDatabase:
    """A small random instance covering the query's relations.

    Each relation gets each tuple of ``{1..domain}^arity`` independently
    with probability ``fill``, carrying a random marginal in
    ``(0, p_max]``.
    """
    db = ProbabilisticDatabase()
    for atom in query.atoms:
        arity = atom.arity
        rows = []
        for idx in range(domain_size**arity):
            if rng.random() > fill:
                continue
            digits = []
            x = idx
            for _ in range(arity):
                x, d = divmod(x, domain_size)
                digits.append(d + 1)
            rows.append(tuple(digits))
        if not rows:
            rows = [tuple(1 for _ in range(arity))]
        if atom.relation in deterministic:
            db.add_table(atom.relation, rows, deterministic=True, arity=arity)
        else:
            db.add_table(
                atom.relation,
                [(r, rng.uniform(0.05, p_max)) for r in rows],
                arity=arity,
            )
    return db


def reference_scores(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    opts: Optimizations,
    use_schema_knowledge: bool = True,
) -> dict[tuple, float]:
    """The seed row-at-a-time evaluator run through the engine pipeline.

    Mirrors ``DissociationEngine.evaluate`` (plan enumeration, Opt. 1
    merging, Opt. 3 reduction, min-combining in "all plans" mode) but
    scores every plan with :func:`plan_scores_reference` — the oracle the
    differential harness compares both real backends against.
    """
    if use_schema_knowledge:
        schema = db.schema
        deterministic = schema.deterministic_relations
        fds = schema.fds_by_relation
    else:
        deterministic, fds = frozenset(), {}
    instance = reduce_database(query, db) if opts.semijoin else db
    if opts.single_plan:
        merged = single_plan(query, deterministic=deterministic, fds=fds)
        return plan_scores_reference(merged, query, instance)
    combined: dict[tuple, float] = {}
    for plan in minimal_plans(query, deterministic=deterministic, fds=fds):
        scored = plan_scores_reference(plan, query, instance)
        for answer, score in scored.items():
            if answer not in combined or score < combined[answer]:
                combined[answer] = score
    return combined


def assert_backends_agree(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    combos: tuple[Optimizations, ...] = ALL_OPTIMIZATION_COMBOS,
    tolerance: float = 1e-9,
    use_schema_knowledge: bool = True,
    cache_size: int | None = None,
    join_ordering: str = "cost",
    compare_orderings: bool = False,
    compare_facade: bool = False,
) -> dict[tuple, float]:
    """Differential harness: reference vs columnar vs SQLite.

    Runs the seed reference pipeline, the columnar memory engine, and
    the SQLite engine on ``(query, db)`` under every ``Optimizations``
    combination in ``combos`` and asserts that all scores agree within
    ``tolerance``. The two engines persist across combinations, so
    cross-query cache and temp-view-registry reuse is exercised too.
    Returns the reference scores of the last combination.

    ``join_ordering`` selects the memory engine's scheduler; with
    ``compare_orderings`` a second memory engine runs the *other*
    scheduler on every combination and its scores must be **bit
    identical** (the canonical combine-order guarantee — the schedule
    may change the work, never the floats).

    With ``compare_facade`` a ``repro.connect()`` :class:`Session` per
    backend (same config) evaluates every combination too, and its
    scores must be **bit identical** to the direct engine's — the
    facade adds routing and a result cache, never arithmetic. Each
    combo is queried twice, so the second call exercises the result
    cache's snapshot path as well.
    """
    memory_config = EngineConfig(
        use_schema_knowledge=use_schema_knowledge,
        cache_size=cache_size,
        join_ordering=join_ordering,
    )
    sqlite_config = EngineConfig(
        backend="sqlite",
        use_schema_knowledge=use_schema_knowledge,
        cache_size=cache_size,
    )
    memory = DissociationEngine(db, memory_config)
    sqlite = DissociationEngine(db, sqlite_config)
    other = None
    if compare_orderings:
        other = DissociationEngine(
            db,
            memory_config.replace(
                join_ordering="greedy" if join_ordering == "cost" else "cost"
            ),
        )
    sessions: list[Session] = []
    if compare_facade:
        sessions = [
            Session(db, memory_config),
            Session(db, sqlite_config),
        ]
    reference: dict[tuple, float] = {}
    try:
        for opts in combos:
            reference = reference_scores(
                query, db, opts, use_schema_knowledge=use_schema_knowledge
            )
            direct_scores: dict[str, dict[tuple, float]] = {}
            for engine in (memory, sqlite):
                got = engine.propagation_score(query, opts)
                direct_scores[engine.backend] = got
                context = f"{engine.backend} backend, {opts}, {query}"
                assert set(got) == set(reference), (
                    f"{context}: answer sets differ: "
                    f"{set(got) ^ set(reference)}"
                )
                for answer in reference:
                    assert close(got[answer], reference[answer], tolerance), (
                        f"{context}: {answer}: "
                        f"{got[answer]} != {reference[answer]}"
                    )
            if other is not None:
                mine = memory.propagation_score(query, opts)
                theirs = other.propagation_score(query, opts)
                context = f"{opts}, {query}"
                assert mine == theirs, (
                    f"join orderings disagree (must be bit-identical): "
                    f"{context}: "
                    f"{ {k: (mine[k], theirs.get(k)) for k in mine if mine.get(k) != theirs.get(k)} }"
                )
            for engine, session in zip((memory, sqlite), sessions):
                direct = direct_scores[engine.backend]
                context = f"{engine.backend} facade, {opts}, {query}"
                for via in (
                    session.query(query, opts).scores(),  # cache miss
                    session.query(query, opts).scores(),  # cache hit
                ):
                    assert via == direct, (
                        f"facade diverges from the direct engine "
                        f"(must be bit-identical): {context}: "
                        f"{ {k: (via.get(k), direct.get(k)) for k in set(via) | set(direct) if via.get(k) != direct.get(k)} }"
                    )
    finally:
        for session in sessions:
            session.close()
    return reference


def close(a: float, b: float, tolerance: float = 1e-9) -> bool:
    return abs(a - b) <= tolerance


def assert_scores_close(
    left: dict[tuple, float],
    right: dict[tuple, float],
    tolerance: float = 1e-9,
) -> None:
    assert set(left) == set(right), (
        f"answer sets differ: {set(left) ^ set(right)}"
    )
    for answer in left:
        assert close(left[answer], right[answer], tolerance), (
            f"{answer}: {left[answer]} != {right[answer]}"
        )
