"""Shared test utilities: random queries, random databases, comparisons.

Used both by plain unit tests and by the hypothesis strategies in the
property-based suites.
"""

from __future__ import annotations

import random

from repro.core import Atom, ConjunctiveQuery, Variable
from repro.db import ProbabilisticDatabase

__all__ = [
    "random_query",
    "random_database_for",
    "boolean",
    "close",
    "assert_scores_close",
]


def boolean(query: ConjunctiveQuery) -> ConjunctiveQuery:
    return query.with_head(())


def random_query(
    rng: random.Random,
    max_atoms: int = 4,
    max_vars: int = 4,
    max_arity: int = 3,
    head_vars: int = 0,
) -> ConjunctiveQuery:
    """A random connected-or-not self-join-free query.

    Every variable is used at least once; atoms draw 1..max_arity variables
    with replacement (repeated variables within an atom are allowed).
    """
    n_atoms = rng.randint(1, max_atoms)
    n_vars = rng.randint(1, max_vars)
    variables = [Variable(f"x{i}") for i in range(n_vars)]
    atoms = []
    for i in range(n_atoms):
        arity = rng.randint(1, max_arity)
        terms = tuple(rng.choice(variables) for _ in range(arity))
        atoms.append(Atom(f"R{i}", terms))
    # ensure every variable occurs somewhere: retarget unused ones
    used = set().union(*(a.own_variables for a in atoms))
    variables = [v for v in variables if v in used]
    if not variables:
        variables = sorted(used) or [Variable("x0")]
    head = tuple(
        rng.sample(variables, min(head_vars, len(variables)))
        if head_vars
        else ()
    )
    return ConjunctiveQuery(atoms, head)


def random_database_for(
    query: ConjunctiveQuery,
    rng: random.Random,
    domain_size: int = 3,
    fill: float = 0.7,
    p_max: float = 0.8,
    deterministic: frozenset[str] = frozenset(),
) -> ProbabilisticDatabase:
    """A small random instance covering the query's relations.

    Each relation gets each tuple of ``{1..domain}^arity`` independently
    with probability ``fill``, carrying a random marginal in
    ``(0, p_max]``.
    """
    db = ProbabilisticDatabase()
    for atom in query.atoms:
        arity = atom.arity
        rows = []
        for idx in range(domain_size**arity):
            if rng.random() > fill:
                continue
            digits = []
            x = idx
            for _ in range(arity):
                x, d = divmod(x, domain_size)
                digits.append(d + 1)
            rows.append(tuple(digits))
        if not rows:
            rows = [tuple(1 for _ in range(arity))]
        if atom.relation in deterministic:
            db.add_table(atom.relation, rows, deterministic=True, arity=arity)
        else:
            db.add_table(
                atom.relation,
                [(r, rng.uniform(0.05, p_max)) for r in rows],
                arity=arity,
            )
    return db


def close(a: float, b: float, tolerance: float = 1e-9) -> bool:
    return abs(a - b) <= tolerance


def assert_scores_close(
    left: dict[tuple, float],
    right: dict[tuple, float],
    tolerance: float = 1e-9,
) -> None:
    assert set(left) == set(right), (
        f"answer sets differ: {set(left) ^ set(right)}"
    )
    for answer in left:
        assert close(left[answer], right[answer], tolerance), (
            f"{answer}: {left[answer]} != {right[answer]}"
        )
