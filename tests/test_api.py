"""The unified session API: configs, canonical keys, result cache, facade.

Covers the PR-5 surface:

* ``EngineConfig`` / ``ServiceConfig`` / ``Optimizations`` hashability,
  equality, and validation;
* canonical query keys — stability under variable renaming and atom
  reordering, sensitivity to head order and constants;
* the engine-level ``minimal_plans`` memo (identical and renamed
  repeats, schema-flag sensitivity);
* ``ResultCache`` hit/miss/eviction counters and epoch invalidation —
  including under concurrent service traffic with mid-stream
  ``mutate()`` calls;
* the legacy-kwarg deprecation shims and the ``**engine_kwargs`` typo
  validation;
* bit-identity of every facade surface against the direct engine and
  service calls, across all 8 optimization combos on both backends.
"""

from __future__ import annotations

import random
import threading

import pytest

import repro
from repro import (
    ConjunctiveQuery,
    DissociationEngine,
    DissociationService,
    EngineConfig,
    Optimizations,
    ResultCache,
    ServiceConfig,
    connect,
    parse_query,
    query_key,
)
from repro.api.keys import canonical_form, result_key
from repro.core import Variable, rename_query
from repro.core.canonical import rename_plan

from .helpers import (
    ALL_OPTIMIZATION_COMBOS,
    assert_backends_agree,
    random_database_for,
    random_query,
)


def small_db():
    db = repro.ProbabilisticDatabase()
    db.add_table("R", [((1,), 0.5), ((2,), 0.7)])
    db.add_table("S", [((1, 4), 0.5), ((1, 5), 0.3), ((2, 4), 0.8)])
    db.add_table("T", [((4,), 0.6), ((5,), 0.9)])
    return db


CHAIN = "q(x,y) :- R(x), S(x,y), T(y)"


def _strip_timings(obj):
    """Drop wall-clock ``seconds`` fields so explains compare structurally."""
    if isinstance(obj, dict):
        return {
            k: _strip_timings(v) for k, v in obj.items() if k != "seconds"
        }
    if isinstance(obj, list):
        return [_strip_timings(v) for v in obj]
    return obj


# ----------------------------------------------------------------------
# configs
# ----------------------------------------------------------------------
class TestConfigs:
    def test_engine_config_hashable_and_equal(self):
        a = EngineConfig(backend="sqlite", cache_size=8)
        b = EngineConfig(backend="sqlite", cache_size=8)
        c = EngineConfig(backend="sqlite", cache_size=9)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2
        assert {a: "x"}[b] == "x"

    def test_service_config_hashable_and_equal(self):
        a = ServiceConfig(workers=3)
        b = ServiceConfig(workers=3)
        assert a == b and hash(a) == hash(b)
        assert a != ServiceConfig(workers=4)

    def test_optimizations_hashable(self):
        assert len(set(ALL_OPTIMIZATION_COMBOS)) == 8
        assert Optimizations() == Optimizations(
            single_plan=True, reuse_views=True, semijoin=False
        )

    def test_engine_config_frozen(self):
        config = EngineConfig()
        with pytest.raises(Exception):
            config.backend = "sqlite"  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "pg"},
            {"join_ordering": "random"},
            {"cache_size": -1},
            {"join_dp_threshold": -2},
            {"write_factor": -0.5},
            {"plan_memo_size": -1},
        ],
    )
    def test_engine_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_batch_size": 0},
            {"max_batch_delay": -1.0},
            {"max_pending": 0},
        ],
    )
    def test_service_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_replace_revalidates(self):
        config = EngineConfig()
        assert config.replace(backend="sqlite").backend == "sqlite"
        with pytest.raises(ValueError):
            config.replace(backend="pg")

    def test_from_kwargs_rejects_unknown(self):
        with pytest.raises(TypeError, match="cache_sise"):
            EngineConfig.from_kwargs(cache_sise=8)


# ----------------------------------------------------------------------
# canonical query keys
# ----------------------------------------------------------------------
class TestQueryKey:
    def test_stable_under_variable_renaming(self):
        q1 = parse_query("q(x) :- R(x,y), S(y,z), T(z)")
        q2 = parse_query("q(a) :- R(a,b), S(b,c), T(c)")
        assert query_key(q1) == query_key(q2)

    def test_stable_under_atom_reordering(self):
        q1 = parse_query("q() :- R(x), S(x,y), T(y)")
        q2 = parse_query("q() :- T(y), R(x), S(x,y)")
        assert query_key(q1) == query_key(q2)

    def test_stable_under_both(self):
        q1 = parse_query("q(u) :- R(u,v), S(v,w)")
        q2 = parse_query("q(p) :- S(q,r), R(p,q)")
        assert query_key(q1) == query_key(q2)

    def test_head_order_distinguishes(self):
        body = "R(x,y)"
        q1 = parse_query(f"q(x,y) :- {body}")
        q2 = parse_query(f"q(y,x) :- {body}")
        assert query_key(q1) != query_key(q2)

    def test_head_set_distinguishes(self):
        q1 = parse_query("q(x) :- R(x,y)")
        q2 = parse_query("q(y) :- R(x,y)")
        q3 = parse_query("q() :- R(x,y)")
        assert len({query_key(q1), query_key(q2), query_key(q3)}) == 3

    def test_constants_distinguish(self):
        q1 = parse_query("q() :- R('a',x)")
        q2 = parse_query("q() :- R('b',x)")
        q3 = parse_query("q() :- R(y,x)")
        assert len({query_key(q1), query_key(q2), query_key(q3)}) == 3

    def test_structure_distinguishes(self):
        q1 = parse_query("q() :- R(x,y), S(y,z)")  # chain
        q2 = parse_query("q() :- R(x,y), S(x,z)")  # star
        assert query_key(q1) != query_key(q2)

    def test_name_is_ignored(self):
        q1 = parse_query("q() :- R(x)")
        q2 = parse_query("other() :- R(x)")
        assert query_key(q1) == query_key(q2)

    def test_dissociated_atoms_distinguish(self):
        q = parse_query("q() :- R(x), S(x,y)")
        dissociated = q.dissociate({"R": frozenset([Variable("y")])})
        assert query_key(q) != query_key(dissociated)
        renamed = parse_query("q() :- R(a), S(a,b)").dissociate(
            {"R": frozenset([Variable("b")])}
        )
        assert query_key(dissociated) == query_key(renamed)

    def test_random_queries_rename_reorder_invariant(self):
        rng = random.Random(7)
        for _ in range(50):
            query = random_query(rng, max_atoms=4, max_vars=4, head_vars=2)
            mapping = {
                v: Variable(f"w{i}")
                for i, v in enumerate(sorted(query.variables))
            }
            reordered = ConjunctiveQuery(
                tuple(reversed(query.atoms)), query.head_order
            )
            renamed = rename_query(reordered, mapping)
            assert query_key(query) == query_key(renamed)

    def test_canonical_form_composes_to_bijection(self):
        q1 = parse_query("q(x) :- R(x,y), S(y,z)")
        q2 = parse_query("q(c) :- S(b,a), R(c,b)")
        key1, n1 = canonical_form(q1)
        key2, n2 = canonical_form(q2)
        assert key1 == key2
        inverse = {i: v for v, i in n2.items()}
        mapping = {v: inverse[i] for v, i in n1.items()}
        renamed = {rename_plan(p, mapping) for p in repro.minimal_plans(q1)}
        assert renamed == set(repro.minimal_plans(q2))


# ----------------------------------------------------------------------
# the engine-level plan memo
# ----------------------------------------------------------------------
class TestPlanMemo:
    def test_identical_repeat_returns_same_plans_without_reenumeration(
        self, monkeypatch
    ):
        db = small_db()
        engine = DissociationEngine(db)
        query = parse_query(CHAIN)
        first = engine.minimal_plans(query)
        calls = []
        import repro.engine.evaluator as evaluator_module

        original = evaluator_module.minimal_plans
        monkeypatch.setattr(
            evaluator_module,
            "minimal_plans",
            lambda *a, **k: calls.append(1) or original(*a, **k),
        )
        second = engine.minimal_plans(query)
        assert not calls, "repeat must not re-enumerate"
        assert [id(p) for p in first] == [id(p) for p in second]
        stats = engine.plan_memo_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_renamed_repeat_served_by_renaming(self, monkeypatch):
        db = small_db()
        engine = DissociationEngine(db)
        query = parse_query(CHAIN)
        engine.minimal_plans(query)
        import repro.engine.evaluator as evaluator_module

        monkeypatch.setattr(
            evaluator_module,
            "minimal_plans",
            lambda *a, **k: pytest.fail("renamed repeat re-enumerated"),
        )
        renamed = parse_query("q(a,b) :- R(a), S(a,b), T(b)")
        plans = engine.minimal_plans(renamed)
        assert engine.plan_memo_stats()["renamed_hits"] == 1
        monkeypatch.undo()  # the comparison engines enumerate for real
        fresh = DissociationEngine(small_db()).minimal_plans(renamed)
        assert set(plans) == set(fresh)
        # and evaluation through the renamed plans matches a fresh
        # engine's enumeration, bit for bit
        assert (
            engine.propagation_score(renamed)
            == DissociationEngine(db).propagation_score(renamed)
        )

    def test_memo_survives_unrelated_schema_growth_and_mutation(self):
        db = small_db()
        engine = DissociationEngine(db)
        query = parse_query(CHAIN)
        first = engine.minimal_plans(query)
        db.add_table("Z", [((1,), 0.5)])  # unrelated relation
        db.table("R").insert((9,), 0.5)  # data mutation
        second = engine.minimal_plans(query)
        # plans depend on query structure + relevant schema only — both
        # changes leave the memo entry valid (and identical)
        assert [id(p) for p in first] == [id(p) for p in second]
        assert engine.plan_memo_stats()["misses"] == 1

    def test_memo_disabled(self):
        engine = DissociationEngine(
            small_db(), EngineConfig(plan_memo_size=0)
        )
        query = parse_query(CHAIN)
        a = engine.minimal_plans(query)
        b = engine.minimal_plans(query)
        assert engine.plan_memo_stats()["size"] == 0
        assert set(a) == set(b)

    def test_memo_lru_eviction(self):
        engine = DissociationEngine(
            small_db(), EngineConfig(plan_memo_size=1)
        )
        q1 = parse_query("q() :- R(x), S(x,y)")
        q2 = parse_query("q() :- S(x,y), T(y)")
        engine.minimal_plans(q1)
        engine.minimal_plans(q2)
        stats = engine.plan_memo_stats()
        assert stats["size"] == 1 and stats["evictions"] >= 1


# ----------------------------------------------------------------------
# ResultCache mechanics
# ----------------------------------------------------------------------
class TestResultCache:
    def test_hit_miss_eviction_counters(self):
        db = small_db()
        engine = DissociationEngine(db)
        cache = ResultCache(max_entries=2)
        queries = [
            parse_query("q() :- R(x), S(x,y)"),
            parse_query("q() :- S(x,y), T(y)"),
            parse_query("q() :- R(x), S(x,y), T(y)"),
        ]
        opts = Optimizations()
        config = EngineConfig()
        keys = [result_key(q, opts, config, db.version) for q in queries]
        assert cache.get(keys[0]) is None
        for key, query in zip(keys, queries):
            cache.put(key, engine.evaluate(query, opts))
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["size"] == 2  # LRU evicted the first entry
        assert stats["evictions"] == 1
        assert cache.get(keys[0]) is None  # evicted
        hit = cache.get(keys[2])
        assert hit is not None and hit.cached
        assert cache.stats()["hits"] == 1

    def test_snapshot_isolation(self):
        db = small_db()
        engine = DissociationEngine(db)
        cache = ResultCache()
        query = parse_query(CHAIN)
        result = engine.evaluate(query)
        cache.put("k", result)
        result.scores.clear()  # caller corruption must not reach the cache
        served = cache.get("k")
        assert served.scores and served.cached
        served.scores.clear()
        assert cache.get("k").scores  # nor must served copies

    def test_disabled_cache(self):
        cache = ResultCache(max_entries=0)
        cache.put("k", DissociationEngine(small_db()).evaluate(
            parse_query(CHAIN)
        ))
        assert len(cache) == 0 and cache.get("k") is None

    def test_evict_stale(self):
        cache = ResultCache()
        result = DissociationEngine(small_db()).evaluate(parse_query(CHAIN))
        # keys end in epoch vectors: only entries naming a relation
        # whose epoch moved (or that was dropped) are evicted
        cache.put(("a", (("R", (1, 3)),)), result)
        cache.put(("b", (("R", (1, 3)), ("S", (2, 5)))), result)
        cache.put(("c", (("S", (2, 5)),)), result)
        cache.put(("d", "no-vector"), result)
        evicted = cache.evict_stale({"R": (1, 9), "S": (2, 5)})
        assert evicted == 2  # the two entries naming R
        assert len(cache) == 2 and cache.stats()["evictions"] == 2
        # a dropped relation is a disagreement too
        assert cache.evict_stale({"R": (1, 9)}) == 1  # "c" names gone S
        assert cache.get(("d", "no-vector")) is not None


# ----------------------------------------------------------------------
# deprecation shims and kwarg validation
# ----------------------------------------------------------------------
class TestRemovedLegacyKwargs:
    """The PR-5 deprecation shims are gone: config objects only."""

    def test_engine_legacy_kwargs_are_gone(self):
        with pytest.raises(TypeError, match="backend"):
            DissociationEngine(small_db(), backend="sqlite")

    def test_engine_rejects_non_config_positional(self):
        with pytest.raises(TypeError, match="EngineConfig"):
            DissociationEngine(small_db(), "sqlite")

    def test_engine_config_spelling_works(self):
        engine = DissociationEngine(
            small_db(), EngineConfig(backend="sqlite")
        )
        assert engine.config == EngineConfig(backend="sqlite")

    def test_service_legacy_kwargs_are_gone(self):
        with pytest.raises(TypeError, match="workers"):
            DissociationService(small_db(), workers=1)
        with pytest.raises(TypeError, match="cache_size"):
            DissociationService(small_db(), cache_size=16)

    def test_service_rejects_non_config_positional(self):
        with pytest.raises(TypeError, match="EngineConfig"):
            DissociationService(small_db(), "sqlite")
        with pytest.raises(TypeError, match="ServiceConfig"):
            DissociationService(small_db(), EngineConfig(), "nope")

    def test_service_config_spelling_works(self):
        service = DissociationService(
            small_db(),
            EngineConfig(cache_size=16),
            ServiceConfig(workers=1),
        )
        try:
            assert service.config.cache_size == 16
            assert service.service_config.workers == 1
        finally:
            service.close()


# ----------------------------------------------------------------------
# the Session facade
# ----------------------------------------------------------------------
class TestSession:
    def test_repeat_served_from_cache_with_zero_engine_evaluations(self):
        db = small_db()
        with connect(db) as session:
            handle = session.query(CHAIN)
            first = handle.result()
            evaluations = session.engine.evaluation_count
            assert evaluations == 1 and not first.cached
            second = handle.result()
            assert session.engine.evaluation_count == evaluations
            assert second.cached
            assert second.scores == first.scores  # bit-identical
            stats = session.results.stats()
            assert stats["hits"] == 1 and stats["misses"] == 1

    def test_renamed_and_reordered_repeat_hits(self):
        db = small_db()
        with connect(db) as session:
            first = session.evaluate("q(x,y) :- R(x), S(x,y), T(y)")
            renamed = session.evaluate("q(a,b) :- T(b), R(a), S(a,b)")
            assert renamed.cached and renamed.scores == first.scores
            assert session.engine.evaluation_count == 1

    def test_distinct_optimizations_miss(self):
        with connect(small_db()) as session:
            session.evaluate(CHAIN, Optimizations())
            result = session.evaluate(CHAIN, Optimizations.none())
            assert not result.cached
            assert session.engine.evaluation_count == 2

    def test_query_accepts_string_and_object(self):
        query = parse_query(CHAIN)
        with connect(small_db()) as session:
            assert (
                session.query(CHAIN).scores()
                == session.query(query).scores()
            )

    def test_invalid_query_type(self):
        with connect(small_db()) as session:
            with pytest.raises(TypeError, match="ConjunctiveQuery"):
                session.query(42)  # type: ignore[arg-type]

    def test_mutation_invalidates(self):
        db = small_db()
        with connect(db) as session:
            before = session.query(CHAIN).result()
            session.mutate(lambda d: d.table("R").insert((3,), 0.9))
            after = session.query(CHAIN).result()
            assert not after.cached and after.epoch != before.epoch
            assert session.results.stats()["size"] == 1  # stale evicted
            fresh = DissociationEngine(db).propagation_score(
                parse_query(CHAIN)
            )
            assert after.scores == fresh

    def test_facade_methods_match_direct_engine(self):
        db = small_db()
        query = parse_query(CHAIN)
        direct = DissociationEngine(db)
        with connect(db) as session:
            handle = session.query(CHAIN)
            assert handle.scores() == direct.propagation_score(query)
            assert handle.ranking() == direct.evaluate(query).ranking()
            assert handle.exact() == direct.exact(query)
            assert handle.monte_carlo(200, seed=1) == direct.monte_carlo(
                query, 200, seed=1
            )
            assert handle.per_plan() == direct.score_per_plan(query)
            assert set(handle.plans()) == set(direct.minimal_plans(query))
            assert handle.is_safe() == direct.is_safe(query)
            assert (
                handle.lineage().by_answer
                == direct.lineage(query).by_answer
            )
            mine = handle.explain()
            theirs = direct.explain(query)
            assert _strip_timings(mine["plans"]) == _strip_timings(
                theirs["plans"]
            )
            assert mine["plan_count"] == theirs["plan_count"]
            bounds = handle.probability_bounds()
            assert bounds == direct.probability_bounds(query)

    def test_submit_serial_and_cached(self):
        with connect(small_db()) as session:
            a = session.submit(CHAIN).result()
            b = session.submit(CHAIN).result()
            assert not a.cached and b.cached
            assert a.scores == b.scores

    def test_evaluate_many(self):
        queries = [CHAIN, "q() :- R(x), S(x,y)", CHAIN]
        with connect(small_db()) as session:
            results = session.evaluate_many(queries)
            assert results[0].scores == results[2].scores
            assert session.engine.evaluation_count == 2

    def test_service_config_requires_concurrent(self):
        with pytest.raises(ValueError, match="concurrent"):
            connect(small_db(), service=ServiceConfig())

    def test_closed_session_refuses_work(self):
        session = connect(small_db(), EngineConfig(backend="sqlite"))
        handle = session.query(CHAIN)
        handle.result()
        session.close()
        # neither new evaluations nor lazy engine resurrection after
        # close(): the handle and the session must both refuse
        with pytest.raises(RuntimeError, match="closed"):
            session.evaluate(CHAIN)
        with pytest.raises(RuntimeError, match="closed"):
            handle.explain()
        with pytest.raises(RuntimeError, match="closed"):
            session.mutate(lambda d: None)

    def test_stats_shape(self):
        with connect(small_db()) as session:
            session.query(CHAIN).result()
            stats = session.stats()
            assert stats["result_cache"]["misses"] == 1
            assert stats["engine"]["evaluations"] == 1
            assert not stats["concurrent"]

    def test_sqlite_facade(self):
        db = small_db()
        with connect(db, EngineConfig(backend="sqlite")) as session:
            result = session.query(CHAIN).result()
            assert result.sql is not None
            repeat = session.query(CHAIN).result()
            assert repeat.cached and repeat.scores == result.scores


class TestSessionConcurrent:
    def test_concurrent_repeat_served_from_cache(self):
        db = small_db()
        with connect(db, concurrent=True) as session:
            first = session.query(CHAIN).result()
            second = session.query(CHAIN).result()
            assert not first.cached and second.cached
            assert second.scores == first.scores
            stats = session.stats()
            assert stats["result_cache"]["hits"] == 1
            assert stats["service"]["queries"] == 1  # one engine evaluation

    def test_concurrent_matches_serial_bit_identical(self):
        queries = [
            CHAIN,
            "q() :- R(x), S(x,y)",
            "q(y) :- S(x,y)",
            "q() :- R(x), S(x,y), T(y)",
        ]
        with connect(small_db()) as serial:
            expected = [serial.query(q).scores() for q in queries]
        with connect(small_db(), concurrent=True) as session:
            futures = [session.submit(q) for q in queries]
            for future, want in zip(futures, expected):
                assert future.result().scores == want

    def test_concurrent_submit_populates_cache(self):
        with connect(small_db(), concurrent=True) as session:
            session.submit(CHAIN).result()
            # the done-callback stores asynchronously-completed results
            assert session.results.stats()["size"] == 1
            assert session.query(CHAIN).result().cached

    def test_mutation_invalidation_under_concurrent_traffic(self):
        db = small_db()
        queries = [
            parse_query(CHAIN),
            parse_query("q() :- R(x), S(x,y)"),
            parse_query("q(y) :- S(x,y)"),
        ]
        opts = Optimizations()

        def expected_for_epoch():
            # keyed by each query's own epoch vector: queries untouched
            # by a mutation keep their pre-mutation key (and scores)
            engine = DissociationEngine(db)
            return {
                (db.epoch_vector(q.relations), q, q.head_order): (
                    engine.propagation_score(q, opts)
                )
                for q in queries
            }

        expected = expected_for_epoch()
        observed: list = []
        errors: list[BaseException] = []
        lock = threading.Lock()
        with connect(
            db, concurrent=True, service=ServiceConfig(workers=2)
        ) as session:

            def client(seed: int) -> None:
                rng = random.Random(seed)
                try:
                    for _ in range(25):
                        query = rng.choice(queries)
                        result = session.query(query, opts).result()
                        with lock:
                            observed.append((query, result))
                except BaseException as exc:  # noqa: BLE001
                    with lock:
                        errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for step in range(3):
                session.mutate(
                    lambda d: d.table("R").insert((100 + step,), 0.5)
                )
                # epochs are stable until the next mutate(): compute
                # this epoch's ground truth while clients keep running
                expected.update(expected_for_epoch())
            for thread in threads:
                thread.join()
            assert not errors, errors
            assert len(observed) == 4 * 25
            for query, result in observed:
                # bit-identity per epoch: a result served from a stale
                # cache entry after a mutate() would fail here
                key = (result.epoch, query, query.head_order)
                assert key in expected, "result from unknown epoch"
                assert result.scores == expected[key]
            # post-traffic: the cache only holds current-epoch entries,
            # and a repeat is served from it
            final = session.query(CHAIN, opts).result()
            chain = queries[0]
            assert final.scores == expected[
                (db.epoch_vector(chain.relations), chain, chain.head_order)
            ]
            assert session.query(CHAIN, opts).result().cached


# ----------------------------------------------------------------------
# facade bit-identity, all 8 combos, both backends
# ----------------------------------------------------------------------
class TestFacadeDifferential:
    def test_chain_query_all_combos_both_backends(self):
        query = parse_query(CHAIN)
        assert_backends_agree(query, small_db(), compare_facade=True)

    def test_boolean_hard_query_all_combos_both_backends(self):
        query = parse_query("q() :- R(x), S(x,y), T(y)")
        assert_backends_agree(query, small_db(), compare_facade=True)

    def test_random_queries_facade(self):
        rng = random.Random(20260730)
        for _ in range(5):
            query = random_query(rng, max_atoms=3, max_vars=3, head_vars=1)
            db = random_database_for(query, rng)
            assert_backends_agree(query, db, compare_facade=True)
