"""Shared test harness: a per-test hang watchdog.

The resilience suite exercises worker crashes, wedged threads, and
shutdown races — exactly the kind of code where a regression shows up
as a *hang*, not a failure. ``pytest-timeout`` is not available in the
toolchain image, so this conftest arms the stdlib
:mod:`faulthandler` instead: every test gets ``REPRO_TEST_TIMEOUT``
seconds (default 300); past that, faulthandler dumps every thread's
traceback to stderr and hard-exits the process, so CI fails in minutes
with a stack instead of wedging the job until the runner's global
timeout.

Set ``REPRO_TEST_TIMEOUT=0`` to disable (e.g. when stepping through a
test under a debugger).
"""

from __future__ import annotations

import faulthandler
import os

import pytest

_LIMIT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    if _LIMIT > 0:
        faulthandler.dump_traceback_later(_LIMIT, exit=True)
        try:
            yield
        finally:
            faulthandler.cancel_dump_traceback_later()
    else:
        yield
