"""PR 9: the observability stack — metrics, tracing, unified LRU.

Covers the :mod:`repro.obs` primitives in isolation (StatsLRU,
Histogram, MetricsRegistry, Tracer, Observer) and the end-to-end
wiring: traced requests through the serial session and the concurrent
service, span-tree parenting across the worker hop, journal/mutation
counters, the slow-query log, Prometheus rendering, and the <2%
no-op-observer overhead bound on the chain-7 warm loop.
"""

import threading
import time

import pytest

import repro
from repro import EngineConfig, Optimizations, ServiceConfig, connect
from repro.core.parser import parse_query
from repro.obs import (
    Histogram,
    MetricsRegistry,
    NULL_OBSERVER,
    NullObserver,
    Observer,
    StatsLRU,
    Tracer,
    resolve_observer,
)


def small_db():
    db = repro.ProbabilisticDatabase()
    db.add_table("R", [((1,), 0.5), ((2,), 0.7)])
    db.add_table("S", [((1, 4), 0.5), ((1, 5), 0.3), ((2, 4), 0.8)])
    db.add_table("T", [((4,), 0.6), ((5,), 0.9)])
    return db


def chain_database(k=7, rows=24, seed=11):
    """A k-relation chain database (the benchmark workload's shape)."""
    import random

    rng = random.Random(seed)
    db = repro.ProbabilisticDatabase()
    for i in range(1, k + 1):
        db.add_table(
            f"R{i}",
            [
                ((v, (v * 7 + i) % rows), round(rng.uniform(0.1, 0.9), 3))
                for v in range(rows)
            ],
        )
    return db


def chain_query(k=7):
    atoms = ", ".join(
        f"R{i}(x{i-1}, x{i})" for i in range(1, k + 1)
    )
    return parse_query(f"q() :- {atoms}")


BOOL_CHAIN = "q() :- R(x), S(x,y), T(y)"


# ----------------------------------------------------------------------
# StatsLRU — the consolidated cache core
# ----------------------------------------------------------------------
class TestStatsLRU:
    def test_basic_hit_miss_eviction(self):
        lru = StatsLRU(2)
        assert lru.get("a") is None  # miss
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # hit; a now MRU
        lru.put("c", 3)  # evicts b (LRU)
        assert "b" not in lru and "a" in lru and "c" in lru
        assert lru.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "invalidations": 0,
            "size": 2,
            "max_entries": 2,
        }

    def test_zero_capacity_stores_nothing(self):
        lru = StatsLRU(0)
        lru.put("a", 1)
        assert len(lru) == 0
        assert lru.get("a") is None
        assert lru.stats()["misses"] == 1
        assert lru.stats()["evictions"] == 0

    def test_unbounded(self):
        lru = StatsLRU(None)
        for i in range(100):
            lru.put(i, i)
        assert len(lru) == 100
        assert lru.stats()["evictions"] == 0

    def test_lru_order_iteration(self):
        lru = StatsLRU()
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)
        lru.get("a")  # refresh a to MRU
        assert list(lru) == ["b", "c", "a"]

    def test_on_evict_callback(self):
        dropped = []
        lru = StatsLRU(1, on_evict=lambda k, v: dropped.append((k, v)))
        lru.put("a", 1)
        lru.put("b", 2)
        assert dropped == [("a", 1)]
        lru.pop("b", count="eviction")
        assert dropped == [("a", 1), ("b", 2)]

    def test_evictable_predicate_pins(self):
        pinned = {"a"}
        lru = StatsLRU(1, evictable=lambda k, v: k not in pinned)
        lru.put("a", 1)
        lru.put("b", 2)  # over cap, but a is pinned → b evicted? no:
        # enforce_cap walks LRU-first; a is protected so b (the newest)
        # would only go if the cap still overflows after skipping a
        assert "a" in lru
        pinned.clear()
        lru.enforce_cap()
        assert len(lru) == 1

    def test_remove_where_counts_selected_counter(self):
        lru = StatsLRU()
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)
        assert lru.remove_where(lambda k, v: v >= 2, count="invalidation") == 2
        stats = lru.stats()
        assert stats["invalidations"] == 2 and stats["evictions"] == 0
        lru.put("d", 4)
        assert lru.remove_where(lambda k, v: True, count=None) == 2
        assert lru.stats()["evictions"] == 0

    def test_clear_counts_and_callback_opt_out(self):
        dropped = []
        lru = StatsLRU(on_evict=lambda k, v: dropped.append(k))
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.clear(count="eviction") == 2
        assert lru.stats()["evictions"] == 2 and dropped == ["a", "b"]
        lru.put("c", 3)
        lru.clear(count=None, callback=False)
        assert dropped == ["a", "b"]  # no callback for c

    def test_counting_opt_outs(self):
        lru = StatsLRU()
        lru.get("missing", count_miss=False)
        lru.put("a", 1)
        lru.get("a", count_hit=False)
        lru.add_miss(3)
        stats = lru.stats()
        assert stats == {
            "hits": 0,
            "misses": 3,
            "evictions": 0,
            "invalidations": 0,
            "size": 1,
            "max_entries": None,
        }

    def test_none_is_a_legal_value(self):
        lru = StatsLRU()
        lru.put("a", None)
        assert "a" in lru
        assert lru.get("a") is None
        assert lru.stats()["hits"] == 1  # counted as a hit, not a miss

    def test_mapping_equality(self):
        lru = StatsLRU()
        lru.put("a", 1)
        assert lru == {"a": 1}
        other = StatsLRU(8)
        other.put("a", 1)
        assert lru == other
        assert lru != {"a": 2}

    def test_invalid_count_kind_rejected(self):
        lru = StatsLRU()
        with pytest.raises(ValueError):
            lru.pop("a", count="bogus")
        with pytest.raises(ValueError):
            StatsLRU(-1)

    def test_thread_safety_smoke(self):
        lru = StatsLRU(64)
        stop = threading.Event()
        errors = []

        def worker(base):
            try:
                while not stop.is_set():
                    for i in range(32):
                        lru.put((base, i), i)
                        lru.get((base, (i * 7) % 32))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        time.sleep(0.1)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        assert len(lru) <= 64


# ----------------------------------------------------------------------
# Histogram quantiles
# ----------------------------------------------------------------------
class TestHistogram:
    def test_exact_lifetime_stats(self):
        h = Histogram(window=4)
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 6
        assert snap["sum"] == pytest.approx(21.0)
        assert snap["min"] == 1.0 and snap["max"] == 6.0
        assert snap["window"] == 4  # ring keeps the most recent 4

    def test_quantile_interpolation(self):
        h = Histogram()
        for v in [10.0, 20.0, 30.0, 40.0]:
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(25.0)
        assert h.quantile(0.0) == pytest.approx(10.0)
        assert h.quantile(1.0) == pytest.approx(40.0)
        assert h.quantile(0.95) == pytest.approx(38.5)

    def test_quantile_recent_bias(self):
        h = Histogram(window=3)
        for v in [100.0, 1.0, 2.0, 3.0]:
            h.observe(v)  # 100.0 has been overwritten
        assert h.quantile(1.0) == pytest.approx(3.0)
        assert h.max == 100.0  # lifetime max survives the window

    def test_empty_and_single(self):
        h = Histogram()
        assert h.quantile(0.5) is None
        assert h.snapshot() == {"count": 0, "sum": 0.0}
        h.observe(7.0)
        assert h.quantile(0.99) == 7.0
        snap = h.snapshot()
        assert snap["p50"] == snap["p95"] == snap["p99"] == 7.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram(window=0)


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("g", 2.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["p50"] == pytest.approx(2.0)
        assert reg.counter("a") == 5
        assert reg.counter("absent") == 0

    def test_collectors_pull_at_snapshot(self):
        reg = MetricsRegistry()
        calls = []

        def collect():
            calls.append(1)
            return {"size": 3}

        reg.register_collector("cache", collect)
        assert calls == []  # nothing pulled until snapshot
        snap = reg.snapshot()
        assert snap["collected"]["cache"] == {"size": 3}
        assert calls == [1]
        reg.unregister_collector("cache")
        assert "cache" not in reg.snapshot()["collected"]

    def test_collector_error_isolated(self):
        reg = MetricsRegistry()
        reg.register_collector("bad", lambda: 1 / 0)
        reg.inc("fine")
        snap = reg.snapshot()
        assert snap["counters"]["fine"] == 1
        assert "error" in snap["collected"]["bad"]

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.inc("engine.evaluations", 2)
        reg.set_gauge("queue.depth", 7)
        reg.observe("latency.seconds", 0.5)
        reg.register_collector(
            "cache", lambda: {"hits": 3, "nested": {"deep": 1}, "skip": "x"}
        )
        text = reg.render_prometheus()
        assert "# TYPE repro_engine_evaluations counter" in text
        assert "repro_engine_evaluations 2" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert 'repro_latency_seconds{quantile="0.5"} 0.5' in text
        assert "repro_latency_seconds_count 1" in text
        assert "repro_cache_hits 3" in text
        assert "repro_cache_nested_deep 1" in text
        assert "skip" not in text  # non-numeric leaves dropped


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_parents(self):
        tracer = Tracer()
        tid = tracer.new_trace()
        with tracer.activate([(tid, None)]):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        tree = tracer.tree(tid)
        assert len(tree["roots"]) == 1
        outer = tree["roots"][0]
        assert outer["name"] == "outer"
        assert [c["name"] for c in outer["children"]] == ["inner"]

    def test_no_active_trace_yields_null_span(self):
        tracer = Tracer()
        with tracer.span("orphan") as span:
            assert span.span_id is None
        span.note(ignored=True)  # must be inert

    def test_multi_member_scope_records_into_every_trace(self):
        tracer = Tracer()
        a, b = tracer.new_trace(), tracer.new_trace()
        with tracer.activate([(a, None), (b, None)]):
            with tracer.span("batch"):
                pass
        for tid in (a, b):
            spans = tracer.spans(tid)
            assert [s["name"] for s in spans] == ["batch"]

    def test_record_span_cross_thread(self):
        tracer = Tracer()
        tid = tracer.new_trace()
        started = time.perf_counter() - 0.25
        tracer.record_span(
            tid, None, "queue.wait", started=started, seconds=0.25
        )
        (span,) = tracer.spans(tid)
        assert span["seconds"] == pytest.approx(0.25)

    def test_trace_eviction_lru(self):
        tracer = Tracer(max_traces=2)
        a = tracer.new_trace()
        b = tracer.new_trace()
        c = tracer.new_trace()  # evicts a
        assert tracer.tree(a) is None
        assert tracer.tree(b) is not None and tracer.tree(c) is not None
        # spans for an evicted trace drop silently
        tracer.record_span(a, None, "late", started=0.0, seconds=0.0)
        assert tracer.tree(a) is None

    def test_span_cap_counts_drops(self):
        tracer = Tracer(max_spans=2)
        tid = tracer.new_trace()
        with tracer.activate([(tid, None)]):
            for _ in range(5):
                with tracer.span("s"):
                    pass
        tree = tracer.tree(tid)
        assert len(tree["roots"]) == 2
        assert tree["dropped_spans"] == 3

    def test_note_metadata(self):
        tracer = Tracer()
        tid = tracer.new_trace()
        with tracer.activate([(tid, None)]):
            with tracer.span("s", fixed=1) as span:
                span.note(rows=7)
        (span,) = tracer.spans(tid)
        assert span["meta"] == {"fixed": 1, "rows": 7}

    def test_breakdown_sums_by_name(self):
        tracer = Tracer()
        tid = tracer.new_trace()
        tracer.record_span(tid, None, "a", started=0.0, seconds=0.5)
        tracer.record_span(tid, None, "a", started=0.0, seconds=0.25)
        tracer.record_span(tid, None, "b", started=0.0, seconds=1.0)
        breakdown = tracer.breakdown(tid)
        assert breakdown["a"] == pytest.approx(0.75)
        assert breakdown["b"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Observer facade
# ----------------------------------------------------------------------
class TestObserver:
    def test_null_observer_is_inert(self):
        obs = NullObserver()
        assert not obs.enabled
        obs.inc("x")
        with obs.span("y") as span:
            assert span.span_id is None
        assert obs.new_trace() is None
        assert obs.snapshot()["counters"] == {}
        assert obs.render_prometheus() == ""
        assert resolve_observer(None) is NULL_OBSERVER
        real = Observer()
        assert resolve_observer(real) is real

    def test_slow_query_log_threshold(self):
        obs = Observer(slow_query_seconds=0.5)
        obs.record_request("t-1", "q1", 0.1)  # below threshold
        obs.record_request("t-2", "q2", 0.9)
        entries = obs.slow_queries()
        assert [e["trace_id"] for e in entries] == ["t-2"]
        assert entries[0]["seconds"] == pytest.approx(0.9)
        snap = obs.snapshot()
        assert snap["histograms"]["session.request.seconds"]["count"] == 2
        assert snap["counters"]["session.slow_queries"] == 1
        assert snap["slow_queries"] == entries

    def test_slow_log_disabled_and_bounded(self):
        obs = Observer()  # slow_query_seconds=None: log disabled
        obs.record_request("t-1", "q", 100.0)
        assert obs.slow_queries() == []
        bounded = Observer(slow_query_seconds=0.0, slow_log_size=2)
        for i in range(5):
            bounded.record_request(f"t-{i}", "q", 0.1)
        assert len(bounded.slow_queries()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Observer(slow_query_seconds=-1.0)
        with pytest.raises(ValueError):
            Observer(slow_log_size=0)


# ----------------------------------------------------------------------
# serial-session tracing
# ----------------------------------------------------------------------
class TestSerialTracing:
    def test_span_tree_covers_the_stack(self):
        obs = Observer()
        with connect(small_db(), EngineConfig(observer=obs)) as session:
            # single_plan=False keeps the plans separate so the engine
            # min-combines them explicitly (the combine.min span)
            handle = session.query(
                BOOL_CHAIN, Optimizations(single_plan=False)
            )
            result = handle.result()
            assert result.trace_id is not None
            tree = session.trace(handle)
        assert tree["trace_id"] == result.trace_id
        (root,) = tree["roots"]
        assert root["name"] == "session.evaluate"
        names = {c["name"] for c in root["children"]}
        assert {
            "session.canonicalize",
            "result_cache.lookup",
            "engine.evaluate",
        } <= names
        engine_span = next(
            c for c in root["children"] if c["name"] == "engine.evaluate"
        )
        child_names = [c["name"] for c in engine_span["children"]]
        assert "plan.enumerate" in child_names
        # the Boolean chain is unsafe: several plans, min-combined,
        # with the per-subplan evaluation nested inside the combine
        assert "combine.min" in child_names
        combine = next(
            c
            for c in engine_span["children"]
            if c["name"] == "combine.min"
        )
        assert combine["meta"]["plans"] == 2
        flat: list = []

        def walk(nodes):
            for node in nodes:
                flat.append(node["name"])
                walk(node["children"])

        walk(combine["children"])
        assert "subplan" in flat

    def test_cache_hit_trace_is_short_and_stamped(self):
        obs = Observer()
        with connect(small_db(), EngineConfig(observer=obs)) as session:
            first = session.evaluate(BOOL_CHAIN)
            second = session.evaluate(BOOL_CHAIN)
            assert second.cached
            assert second.trace_id is not None
            assert second.trace_id != first.trace_id
            tree = session.trace(second)
        (root,) = tree["roots"]
        assert root["meta"]["cached"] is True
        names = {c["name"] for c in root["children"]}
        assert "engine.evaluate" not in names
        assert "result_cache.lookup" in names

    def test_trace_accepts_id_result_and_handle(self):
        obs = Observer()
        with connect(small_db(), EngineConfig(observer=obs)) as session:
            handle = session.query(BOOL_CHAIN)
            result = handle.result()
            by_handle = session.trace(handle)
            by_result = session.trace(result)
            by_id = session.trace(result.trace_id)
            assert by_handle == by_result == by_id
            assert session.trace("t-99999999") is None
            fresh = session.query(BOOL_CHAIN)
            assert session.trace(fresh) is None  # never evaluated

    def test_no_observer_means_no_trace(self):
        with connect(small_db()) as session:
            handle = session.query(BOOL_CHAIN)
            result = handle.result()
            assert result.trace_id is None
            assert session.trace(handle) is None

    def test_submit_traced_serial(self):
        obs = Observer()
        with connect(small_db(), EngineConfig(observer=obs)) as session:
            result = session.submit(BOOL_CHAIN).result()
            assert result.trace_id is not None
            tree = session.trace(result)
        (root,) = tree["roots"]
        assert root["name"] == "session.submit"

    def test_snapshot_exposes_all_cache_layers(self):
        obs = Observer()
        config = EngineConfig(observer=obs)
        with connect(small_db(), config) as session:
            session.evaluate(BOOL_CHAIN)
            session.evaluate(BOOL_CHAIN)
            snap = obs.snapshot()
        collected = snap["collected"]
        # result cache: one miss then one hit
        assert collected["result_cache"]["hits"] == 1
        assert collected["result_cache"]["misses"] == 1
        # engine: subplan cache + plan memo
        engine = collected["engine"]
        assert engine["evaluations"] == 1
        assert "hits" in engine["cache"]
        assert "hits" in engine["plan_memo"]
        assert collected["db"]["durable"] is False
        assert snap["counters"]["engine.evaluations"] == 1

    def test_sqlite_statement_spans_and_counters(self):
        obs = Observer()
        config = EngineConfig(backend="sqlite", observer=obs)
        with connect(small_db(), config) as session:
            result = session.evaluate(BOOL_CHAIN)
            tree = session.trace(result)
            snap = obs.snapshot()
        assert snap["counters"]["sqlite.statements"] >= 1

        def collect_names(nodes, out):
            for node in nodes:
                out.append(node["name"])
                collect_names(node["children"], out)

        names: list = []
        collect_names(tree["roots"], names)
        assert "sqlite.statement" in names


# ----------------------------------------------------------------------
# concurrent-service tracing
# ----------------------------------------------------------------------
class TestConcurrentTracing:
    def test_acceptance_span_coverage(self):
        """The ISSUE acceptance path: cache lookup → batch → plan →
        subplan → combine for a request served by the service."""
        obs = Observer()
        with connect(
            small_db(),
            EngineConfig(observer=obs),
            concurrent=True,
            service=ServiceConfig(workers=2),
        ) as session:
            handle = session.query(
                BOOL_CHAIN, Optimizations(single_plan=False)
            )
            result = handle.result()
            tree = session.trace(handle)
        assert tree is not None and result.trace_id is not None
        (root,) = tree["roots"]
        assert root["name"] == "session.evaluate"
        top = {c["name"] for c in root["children"]}
        assert {
            "result_cache.lookup",
            "queue.wait",
            "service.batch",
        } <= top
        batch = next(
            c for c in root["children"] if c["name"] == "service.batch"
        )
        engine_batch = next(
            c
            for c in batch["children"]
            if c["name"] == "engine.evaluate_batch"
        )
        flat: list = []

        def walk(nodes):
            for node in nodes:
                flat.append(node["name"])
                walk(node["children"])

        walk(engine_batch["children"])
        assert "plan.enumerate" in flat
        assert "combine.min" in flat
        assert "subplan" in flat

    def test_no_cross_contamination_under_concurrency(self):
        obs = Observer()
        queries = [
            "q() :- R(x), S(x,y), T(y)",
            "q(x) :- R(x), S(x,y)",
            "q(y) :- S(x,y), T(y)",
            "q(x,y) :- R(x), S(x,y), T(y)",
        ]
        with connect(
            small_db(),
            EngineConfig(observer=obs),
            concurrent=True,
            service=ServiceConfig(workers=3, max_batch_delay=0.005),
        ) as session:
            results = []
            errors = []

            def run(text):
                try:
                    for _ in range(3):
                        results.append(session.evaluate(text))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(q,)) for q in queries
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            trace_ids = [r.trace_id for r in results]
            assert all(tid is not None for tid in trace_ids)
            assert len(set(trace_ids)) == len(trace_ids)  # one per request
            for tid in trace_ids:
                tree = session.trace(tid)
                if tree is None:
                    continue  # evicted from the bounded store
                # exactly one root request span per trace — no foreign
                # session.evaluate span leaked in from another request
                roots = [n["name"] for n in tree["roots"]]
                assert roots.count("session.evaluate") == 1
                # every trace has at most one batch span (its own)
                flat: list = []

                def walk(nodes):
                    for node in nodes:
                        flat.append(node["name"])
                        walk(node["children"])

                walk(tree["roots"])
                assert flat.count("service.batch") <= 1

    def test_queue_wait_recorded(self):
        obs = Observer()
        with connect(
            small_db(),
            EngineConfig(observer=obs),
            concurrent=True,
        ) as session:
            result = session.evaluate(BOOL_CHAIN)
            snap = obs.snapshot()
        hist = snap["histograms"]["service.queue.wait_seconds"]
        assert hist["count"] >= 1
        tree = session.trace(result)
        (root,) = tree["roots"]
        assert "queue.wait" in {c["name"] for c in root["children"]}

    def test_service_stats_served_from_registry(self):
        obs = Observer()
        with connect(
            small_db(),
            EngineConfig(observer=obs),
            concurrent=True,
        ) as session:
            session.evaluate(BOOL_CHAIN)
            session.evaluate("q(x) :- R(x), S(x,y)")
            stats = session.service.stats()
            snap = obs.snapshot()
        assert stats["batches"] == snap["counters"]["service.batches"]
        assert stats["queries"] == snap["counters"]["service.queries"]
        assert stats["queries"] == 2
        assert sum(stats["batch_occupancy"].values()) == stats["batches"]
        assert snap["collected"]["service.health"]["live_workers"] >= 1
        assert "service.sessions" in snap["collected"]

    def test_service_stats_shape_unchanged_without_observer(self):
        with connect(small_db(), concurrent=True) as session:
            session.evaluate(BOOL_CHAIN)
            stats = session.service.stats()
        for key in (
            "backend",
            "submitted",
            "batches",
            "queries",
            "mutations",
            "rolled_back_mutations",
            "tainted_mutations",
            "mean_batch_size",
            "batch_occupancy",
            "poison_queries",
            "batch_retries",
            "timeouts",
            "dag",
            "namespace",
            "sessions",
        ):
            assert key in stats
        assert stats["queries"] == 1
        assert stats["batch_occupancy"] == {1: 1}
        assert stats["dag"]["dedup_ratio"] == 1.0


# ----------------------------------------------------------------------
# mutation / journal observability
# ----------------------------------------------------------------------
class TestMutationAndJournal:
    def test_mutation_counters(self):
        obs = Observer()
        with connect(small_db(), EngineConfig(observer=obs)) as session:
            session.mutate(lambda db: db.insert("R", (9,), 0.5))
            with pytest.raises(RuntimeError):
                session.mutate(self._failing)
            snap = obs.snapshot()
        assert snap["counters"]["db.mutations.committed"] == 1
        assert snap["counters"]["db.mutations.rolled_back"] == 1
        last = snap["collected"]["db"]["last_mutation"]
        assert last["rolled_back"] is True

    @staticmethod
    def _failing(db):
        db.insert("R", (10,), 0.5)  # tracked → certified rollback
        raise RuntimeError("boom")

    def test_journal_commit_and_checkpoint_counters(self, tmp_path):
        obs = Observer()
        config = EngineConfig(observer=obs)
        with connect(
            path=str(tmp_path / "store"),
            config=config,
            checkpoint_every=2,
        ) as session:
            session.mutate(
                lambda db: db.add_table("R", [((1,), 0.5), ((2,), 0.7)])
            )
            session.mutate(lambda db: db.insert("R", (3,), 0.9))
            session.mutate(lambda db: db.insert("R", (4,), 0.9))
            snap = obs.snapshot()
        counters = snap["counters"]
        assert counters["journal.commits"] >= 2
        assert counters["journal.ops"] >= 3
        assert counters["journal.checkpoints"] >= 1
        assert counters["db.mutations.committed"] == 3
        journal = snap["collected"]["db"]["journal"]
        assert journal["committed_ops"] >= 3
        assert snap["collected"]["db"]["durable"] is True


# ----------------------------------------------------------------------
# explain timings + result trace ids
# ----------------------------------------------------------------------
class TestExplainTimings:
    def test_explain_reports_seconds(self):
        with connect(small_db()) as session:
            report = session.query(BOOL_CHAIN).explain()
        assert report["plans"]
        for entry in report["plans"]:
            assert entry["seconds"] >= 0.0
            for join in entry["joins"]:
                assert join["seconds"] >= 0.0
                for step in join["steps"]:
                    assert step["seconds"] >= 0.0
                    assert "estimated_rows" in step
                    assert "actual_rows" in step


# ----------------------------------------------------------------------
# overhead: the no-op observer must stay under 2% on the warm loop
# ----------------------------------------------------------------------
class TestOverhead:
    def test_noop_observer_overhead_under_2_percent(self):
        """Chain-7 warm-loop micro-benchmark (the ISSUE's <2% gate).

        Both arms run the *same* session code; the baseline arm
        replicates the warm path by hand (resolve → epoch → key →
        cache get), so the measured difference is exactly the
        instrumentation seam: the ``observer.enabled`` checks.
        Best-of-N timing; an absolute floor guards against timer
        jitter on sub-microsecond differences.
        """
        db = chain_database()
        query = chain_query()
        opts = Optimizations()
        iterations = 400
        from repro.api.keys import result_key

        with connect(db) as session:
            session.evaluate(query)  # warm the result cache

            def instrumented():
                started = time.perf_counter()
                for _ in range(iterations):
                    session.evaluate(query)
                return time.perf_counter() - started

            def baseline():
                started = time.perf_counter()
                for _ in range(iterations):
                    resolved = session._resolve(query)
                    key = result_key(
                        resolved,
                        opts,
                        session.config,
                        session._query_epoch(resolved),
                    )
                    assert session.results.get(key) is not None
                return time.perf_counter() - started

            baseline()  # warm both code paths
            instrumented()
            base = min(baseline() for _ in range(7))
            noop = min(instrumented() for _ in range(7))
        overhead = (noop - base) / base
        # <2% relative, with a 100µs absolute floor for timer noise
        assert overhead < 0.02 or (noop - base) < 100e-6, (
            f"no-op observer overhead {overhead:.2%} "
            f"(baseline {base * 1e6:.0f}µs, instrumented {noop * 1e6:.0f}µs)"
        )


# ----------------------------------------------------------------------
# unified-LRU counter parity across the adapters
# ----------------------------------------------------------------------
class TestCounterParity:
    def test_result_cache_parity_with_statslru(self):
        from repro.api.cache import ResultCache

        cache = ResultCache(max_entries=2)
        mirror = StatsLRU(2)
        with connect(small_db()) as session:
            r = session.evaluate(BOOL_CHAIN)
        for i, key in enumerate(["a", "b", "c"]):
            cache.get(key)
            mirror.get(key)
            cache.put(key, r)
            mirror.put(key, i)
        cache.get("c")
        mirror.get("c")
        expected = mirror.stats()
        got = cache.stats()
        assert got["hits"] == expected["hits"]
        assert got["misses"] == expected["misses"]
        assert got["evictions"] == expected["evictions"]
        assert got["size"] == expected["size"]

    def test_engine_cache_layers_report_through_registry(self):
        obs = Observer()
        config = EngineConfig(observer=obs, cache_size=8)
        with connect(small_db(), config) as session:
            session.evaluate(BOOL_CHAIN)
            session.evaluate("q(x) :- R(x), S(x,y)")
            engine_stats = session.engine.cache_stats()
            memo_stats = session.engine.plan_memo_stats()
            snap = obs.snapshot()
        assert snap["collected"]["engine"]["cache"] == engine_stats
        assert snap["collected"]["engine"]["plan_memo"] == memo_stats
        assert memo_stats["misses"] >= 2  # one per distinct query
