"""Tests for the in-memory extensional plan evaluator."""

import random

import pytest

from repro.core import Atom, Constant, Join, MinPlan, Project, Scan, Variable, parse_query
from repro.db import ProbabilisticDatabase
from repro.engine import deterministic_answers, evaluate_plan, plan_scores

from .helpers import random_database_for, random_query

x, y = Variable("x"), Variable("y")


class TestScan:
    def test_basic(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.3), ((2,), 0.6)])
        scores = evaluate_plan(Scan(Atom("R", (x,))), db)
        assert scores == {(1,): 0.3, (2,): 0.6}

    def test_constant_filter(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(("a", 1), 0.3), (("b", 2), 0.6)])
        scores = evaluate_plan(Scan(Atom("R", (Constant("a"), x))), db)
        assert scores == {(1,): 0.3}

    def test_repeated_variable_filter(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 1), 0.3), ((1, 2), 0.6)])
        scores = evaluate_plan(Scan(Atom("R", (x, x))), db)
        assert scores == {(1,): 0.3}


class TestJoin:
    def test_scores_multiply(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((1, 2), 0.4)])
        plan = Join([Scan(Atom("R", (x,))), Scan(Atom("S", (x, y)))])
        scores = evaluate_plan(plan, db)
        assert scores == {(1, 2): 0.2}

    def test_no_match_empty(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((9, 2), 0.4)])
        plan = Join([Scan(Atom("R", (x,))), Scan(Atom("S", (x, y)))])
        assert evaluate_plan(plan, db) == {}

    def test_cross_product(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((2,), 0.4)])
        plan = Join([Scan(Atom("R", (x,))), Scan(Atom("S", (y,)))])
        scores = evaluate_plan(plan, db, output_order=(x, y))
        assert scores == {(1, 2): 0.2}


class TestProject:
    def test_independent_or(self):
        db = ProbabilisticDatabase()
        db.add_table("S", [((1, 4), 0.5), ((1, 5), 0.5), ((2, 4), 0.3)])
        plan = Project([x], Scan(Atom("S", (x, y))))
        scores = evaluate_plan(plan, db)
        assert abs(scores[(1,)] - 0.75) < 1e-12
        assert abs(scores[(2,)] - 0.3) < 1e-12

    def test_boolean_projection(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), ((2,), 0.5)])
        plan = Project([], Scan(Atom("R", (x,))))
        assert abs(evaluate_plan(plan, db)[()] - 0.75) < 1e-12


class TestMin:
    def test_per_tuple_minimum(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 4), 0.9), ((1, 5), 0.1)])
        a = Project([x], Scan(Atom("R", (x, y))))
        # identical subplans: min degenerates but exercises alignment
        plan = MinPlan([a, Project([x], Scan(Atom("R", (x, y))))])
        scores = evaluate_plan(plan, db)
        assert abs(scores[(1,)] - (1 - 0.1 * 0.9)) < 1e-12

    def test_aligned_reorder_branch(self):
        # children with *different column orders*: Scan(R(x,y)) produces
        # order (x, y) while Scan(R(y,x)) produces (y, x); on a symmetric
        # instance they compute the same tuple set, so min must realign
        # the second child before comparing scores.
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.3), ((2, 1), 0.8)])
        plan = MinPlan([Scan(Atom("R", (x, y))), Scan(Atom("R", (y, x)))])
        scores = evaluate_plan(plan, db, output_order=(x, y))
        # (1,2): min(base 0.3, aligned-from-(2,1) 0.8) = 0.3
        # (2,1): min(base 0.8, aligned-from-(1,2) 0.3) = 0.3
        assert scores == {(1, 2): 0.3, (2, 1): 0.3}

    def test_mismatched_tuple_sets_raise_value_error(self):
        # an asymmetric instance: Scan(R(y,x)) aligned back to (x, y)
        # yields {(2,1)} while the base child yields {(1,2)}
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.3)])
        plan = MinPlan([Scan(Atom("R", (x, y))), Scan(Atom("R", (y, x)))])
        with pytest.raises(ValueError, match="different tuple sets"):
            evaluate_plan(plan, db)

    def test_mismatched_row_counts_raise_value_error(self):
        # π_x R(x,y) dedupes to one row while π_x R(y,x) keeps two, so the
        # children disagree already on row *count* (not just tuple values)
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.3), ((1, 3), 0.4)])
        plan = MinPlan(
            [
                Project([x], Scan(Atom("R", (x, y)))),
                Project([x], Scan(Atom("R", (y, x)))),
            ]
        )
        with pytest.raises(ValueError, match="different tuple sets"):
            evaluate_plan(plan, db)


class TestOutputOrder:
    def test_head_order_respected(self):
        db = ProbabilisticDatabase()
        db.add_table("S", [((1, 2), 0.4)])
        q = parse_query("q(y, x) :- S(x, y)")
        scores = plan_scores(Scan(Atom("S", (x, y))), q, db)
        assert scores == {(2, 1): 0.4}

    def test_mismatched_order_rejected(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        with pytest.raises(ValueError):
            evaluate_plan(Scan(Atom("R", (x,))), db, output_order=(y,))


class TestAgainstAnswers:
    def test_plans_return_exactly_the_answers(self):
        rng = random.Random(50)
        from repro.core import minimal_plans

        for _ in range(30):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            db = random_database_for(q, rng, domain_size=2)
            answers = deterministic_answers(q, db)
            for plan in minimal_plans(q):
                scores = plan_scores(plan, q, db)
                assert set(scores) == answers, str(q)

    def test_scores_are_probabilities(self):
        rng = random.Random(51)
        from repro.core import minimal_plans

        for _ in range(20):
            q = random_query(rng, head_vars=1)
            db = random_database_for(q, rng, domain_size=2)
            for plan in minimal_plans(q):
                for score in plan_scores(plan, q, db).values():
                    assert -1e-12 <= score <= 1.0 + 1e-12
