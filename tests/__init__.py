"""Test package marker — makes ``from .helpers import ...`` resolve."""
