"""Tests for lineage construction (grounding) and oblivious bounds."""

import random

import pytest

from repro.core import parse_query
from repro.db import ProbabilisticDatabase
from repro.lineage import (
    DNF,
    dissociate_variable,
    dissociation_is_oblivious,
    exact_probability,
    lineage_of,
    lineage_sizes,
)

from .helpers import random_database_for, random_query


def example_7_db() -> ProbabilisticDatabase:
    db = ProbabilisticDatabase()
    db.add_table("R", [((1,), 0.5), ((2,), 0.6)])
    db.add_table("S", [((1, 4), 0.3), ((1, 5), 0.8)])
    return db


class TestLineageConstruction:
    def test_example_7(self):
        # q :- R(x), S(x,y): F = R(1)S(1,4) ∨ R(1)S(1,5)
        db = example_7_db()
        q = parse_query("q() :- R(x), S(x,y)")
        lineage = lineage_of(q, db)
        f = lineage.by_answer[()]
        assert len(f) == 2
        expected = {
            frozenset({("R", (1,)), ("S", (1, 4))}),
            frozenset({("R", (1,)), ("S", (1, 5))}),
        }
        assert set(f.clauses) == expected

    def test_probabilities_recorded(self):
        db = example_7_db()
        q = parse_query("q() :- R(x), S(x,y)")
        lineage = lineage_of(q, db)
        assert lineage.probabilities[("R", (1,))] == 0.5
        assert lineage.probabilities[("S", (1, 5))] == 0.8

    def test_per_answer_grouping(self):
        db = example_7_db()
        q = parse_query("q(x) :- R(x), S(x,y)")
        lineage = lineage_of(q, db)
        assert set(lineage.by_answer) == {(1,)}
        assert lineage.size((1,)) == 2

    def test_no_answers_empty(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((9, 9), 0.5)])
        q = parse_query("q() :- R(x), S(x,y)")
        assert len(lineage_of(q, db)) == 0

    def test_constants_filter(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(("a", 1), 0.5), (("b", 2), 0.5)])
        q = parse_query("q() :- R('a', x)")
        lineage = lineage_of(q, db)
        assert len(lineage.by_answer[()]) == 1

    def test_repeated_variable_in_atom(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 1), 0.5), ((1, 2), 0.5)])
        q = parse_query("q() :- R(x, x)")
        lineage = lineage_of(q, db)
        assert len(lineage.by_answer[()]) == 1

    def test_lineage_sizes(self):
        db = example_7_db()
        q = parse_query("q(x) :- R(x), S(x,y)")
        assert lineage_sizes(q, db) == {(1,): 2}

    def test_max_size(self):
        db = example_7_db()
        q = parse_query("q() :- R(x), S(x,y)")
        assert lineage_of(q, db).max_size() == 2

    def test_probability_of_query_equals_lineage_probability(self):
        # P(q) = P(F_{q,D}) on random instances
        rng = random.Random(31)
        for _ in range(25):
            q = random_query(rng, max_atoms=3, head_vars=0)
            db = random_database_for(q, rng, domain_size=2)
            lineage = lineage_of(q, db)
            if () not in lineage.by_answer:
                continue
            value = exact_probability(
                lineage.by_answer[()], lineage.probabilities
            )
            assert 0.0 <= value <= 1.0


class TestObliviousBounds:
    def test_example_9(self):
        # F = XY ∨ XZ dissociated on X: P(F') = 1 − (1 − pq)(1 − pr)
        probs = {"X": 0.5, "Y": 0.3, "Z": 0.8}
        f = DNF([["X", "Y"], ["X", "Z"]])
        d = dissociate_variable(f, probs, "X", [[0], [1]])
        assert dissociation_is_oblivious(d)
        p, q, r = 0.5, 0.3, 0.8
        expected = 1 - (1 - p * q) * (1 - p * r)
        assert abs(
            exact_probability(d.formula, d.probabilities) - expected
        ) < 1e-12

    def test_upper_bound(self):
        probs = {"X": 0.5, "Y": 0.3, "Z": 0.8}
        f = DNF([["X", "Y"], ["X", "Z"]])
        d = dissociate_variable(f, probs, "X", [[0], [1]])
        assert exact_probability(d.formula, d.probabilities) >= exact_probability(
            f, probs
        )

    def test_identity_dissociation(self):
        probs = {"X": 0.5, "Y": 0.3}
        f = DNF([["X", "Y"], ["X"]])
        d = dissociate_variable(f, probs, "X", [[0, 1]])
        assert d.formula == f
        assert dissociation_is_oblivious(d)

    def test_equality_for_deterministic_variable(self):
        # Theorem 8 (2): p(X) ∈ {0, 1} ⇒ P(F) = P(F')
        for px in (0.0, 1.0):
            probs = {"X": px, "Y": 0.3, "Z": 0.8}
            f = DNF([["X", "Y"], ["X", "Z"]])
            d = dissociate_variable(f, probs, "X", [[0], [1]])
            assert abs(
                exact_probability(d.formula, d.probabilities)
                - exact_probability(f, probs)
            ) < 1e-12

    def test_invalid_groups_rejected(self):
        f = DNF([["X", "Y"], ["X", "Z"]])
        with pytest.raises(ValueError):
            dissociate_variable(f, {"X": 0.5}, "X", [[0]])
        with pytest.raises(ValueError):
            dissociate_variable(f, {"X": 0.5}, "X", [[0, 1], [1]])

    def test_non_oblivious_detected(self):
        # F = X: dissociating the single occurrence into two copies in the
        # SAME clause violates the side condition (Example 9's caveat).
        f = DNF([["X", "X2"]])
        probs = {"X": 0.5, "X2": 0.5}
        d = dissociate_variable(f, probs, "X", [[0]])
        assert dissociation_is_oblivious(d)  # one copy only: fine
        # build the pathological F' = X'X'' by hand
        from repro.lineage.bounds import DissociatedFormula

        pathological = DissociatedFormula(
            DNF([[("X", 0), ("X", 1)]]),
            {("X", 0): 0.5, ("X", 1): 0.5},
            {("X", 0): "X", ("X", 1): "X"},
        )
        assert not dissociation_is_oblivious(pathological)

    def test_random_dissociations_are_upper_bounds(self):
        rng = random.Random(17)
        for _ in range(40):
            n_vars = rng.randint(2, 5)
            variables = [f"v{i}" for i in range(n_vars)]
            probs = {v: rng.random() for v in variables}
            clauses = [
                rng.sample(variables, rng.randint(1, n_vars))
                for _ in range(rng.randint(2, 5))
            ]
            f = DNF(clauses)
            target = rng.choice(variables)
            containing = [
                i for i, c in enumerate(f.clauses) if target in c
            ]
            if len(containing) < 2:
                continue
            # random partition into two groups
            cut = rng.randint(1, len(containing) - 1)
            groups = [containing[:cut], containing[cut:]]
            d = dissociate_variable(f, probs, target, groups)
            assert dissociation_is_oblivious(d)
            assert (
                exact_probability(d.formula, d.probabilities)
                >= exact_probability(f, probs) - 1e-12
            )
