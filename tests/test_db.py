"""Tests for the database layer: schemas, storage, generators."""

import random

import pytest

from repro.core import ColumnFD
from repro.db import (
    ProbabilisticDatabase,
    Schema,
    TableSchema,
    constant_probabilities,
    populate_random_table,
    random_table_rows,
    uniform_probabilities,
)


class TestTableSchema:
    def test_default_columns(self):
        s = TableSchema("R", 3)
        assert s.columns == ("c0", "c1", "c2")

    def test_explicit_columns(self):
        s = TableSchema("R", 2, ("a", "b"))
        assert s.columns == ("a", "b")

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            TableSchema("R", 2, ("only_one",))

    def test_duplicate_columns(self):
        with pytest.raises(ValueError):
            TableSchema("R", 2, ("a", "a"))

    def test_fd_out_of_range(self):
        with pytest.raises(ValueError):
            TableSchema("R", 2, fds=(ColumnFD((0,), (9,)),))


class TestSchema:
    def test_deterministic_relations(self):
        s = Schema(
            [
                TableSchema("R", 1, deterministic=True),
                TableSchema("S", 2),
            ]
        )
        assert s.deterministic_relations == {"R"}

    def test_fds_by_relation(self):
        s = Schema([TableSchema("S", 2, fds=(ColumnFD((0,), (1,)),))])
        assert "S" in s.fds_by_relation

    def test_duplicate_rejected(self):
        s = Schema([TableSchema("R", 1)])
        with pytest.raises(ValueError):
            s.add(TableSchema("R", 2))

    def test_container_protocol(self):
        s = Schema([TableSchema("R", 1)])
        assert "R" in s and "X" not in s
        assert len(s) == 1
        assert s["R"].arity == 1


class TestProbabilisticDatabase:
    def test_add_with_probabilities(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.3), ((2,), 0.7)])
        assert db.table("R").probability((1,)) == 0.3
        assert len(db.table("R")) == 2

    def test_add_bare_tuples_default_prob_one(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(1, 2), (3, 4)])
        assert db.table("R").probability((1, 2)) == 1.0

    def test_deterministic_rejects_fractional(self):
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError):
            db.add_table("R", [((1,), 0.5)], deterministic=True)

    def test_probability_bounds_enforced(self):
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError):
            db.add_table("R", [((1,), 1.5)])

    def test_arity_mismatch(self):
        db = ProbabilisticDatabase()
        table = db.add_table("R", [((1, 2), 0.5)])
        with pytest.raises(ValueError):
            table.insert((1, 2, 3), 0.5)

    def test_duplicate_table(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(1,)])
        with pytest.raises(ValueError):
            db.add_table("R", [(2,)])

    def test_empty_table_needs_arity(self):
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError):
            db.add_table("R", [])
        db.add_table("S", [], arity=2)
        assert len(db.table("S")) == 0

    def test_missing_table(self):
        db = ProbabilisticDatabase()
        with pytest.raises(KeyError):
            db.table("nope")

    def test_schema_property(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(1,)], deterministic=True)
        db.add_table("S", [((1, 2), 0.4)])
        assert db.schema.deterministic_relations == {"R"}

    def test_average_probability_skips_deterministic(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(1,)], deterministic=True)
        db.add_table("S", [((1,), 0.2), ((2,), 0.4)])
        assert abs(db.average_probability() - 0.3) < 1e-12

    def test_total_rows(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(1,), (2,)])
        db.add_table("S", [(3,)])
        assert db.total_rows() == 3


class TestScaling:
    def test_scaled_probabilities(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.8)])
        scaled = db.scaled(0.5)
        assert scaled.table("R").probability((1,)) == 0.4
        # original unchanged
        assert db.table("R").probability((1,)) == 0.8

    def test_deterministic_kept_by_default(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(1,)], deterministic=True)
        assert db.scaled(0.5).table("R").probability((1,)) == 1.0

    def test_deterministic_scaled_on_request(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(1,)], deterministic=True)
        scaled = db.scaled(0.5, include_deterministic=True)
        assert scaled.table("R").probability((1,)) == 0.5
        assert not scaled.table("R").schema.deterministic

    def test_factor_validated(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(1,)])
        with pytest.raises(ValueError):
            db.scaled(1.5)


class TestGenerators:
    def test_rows_distinct(self):
        rng = random.Random(0)
        rows = random_table_rows(rng, 50, 2, 10)
        assert len(rows) == len(set(rows)) == 50

    def test_rows_capped_by_domain(self):
        rng = random.Random(0)
        rows = random_table_rows(rng, 100, 1, 5)
        assert sorted(rows) == [(1,), (2,), (3,), (4,), (5,)]

    def test_values_in_domain(self):
        rng = random.Random(1)
        for row in random_table_rows(rng, 30, 3, 4):
            assert all(1 <= v <= 4 for v in row)

    def test_uniform_probabilities_bounded(self):
        rng = random.Random(2)
        rows = random_table_rows(rng, 20, 1, 100)
        for _, p in uniform_probabilities(rng, rows, 0.3):
            assert 0.0 <= p <= 0.3

    def test_constant_probabilities(self):
        rows = [(1,), (2,)]
        assert constant_probabilities(rows, 0.1) == [((1,), 0.1), ((2,), 0.1)]

    def test_populate_random_table(self):
        db = ProbabilisticDatabase()
        populate_random_table(db, "R", random.Random(3), 10, 2, 5, p_max=0.5)
        assert len(db.table("R")) == 10
        populate_random_table(
            db, "D", random.Random(3), 4, 1, 9, deterministic=True
        )
        assert db.schema.deterministic_relations == {"D"}
