"""Tests for the explicit dissociation lattice and incidence matrices."""

from repro.core import (
    Dissociation,
    DissociationLattice,
    Variable,
    incidence_matrix,
    parse_query,
)

x, y = Variable("x"), Variable("y")

EXAMPLE_17 = "q() :- R(x), S(x), T(x,y), U(y)"


class TestLatticeStructure:
    def test_example_17_counts(self):
        lattice = DissociationLattice(parse_query(EXAMPLE_17))
        assert len(lattice) == 8
        assert len(lattice.safe_nodes()) == 5
        assert len(lattice.minimal_safe_nodes()) == 2

    def test_bottom_and_top(self):
        lattice = DissociationLattice(parse_query(EXAMPLE_17))
        assert lattice.bottom().delta.is_empty()
        assert lattice.top().delta.size() == 3

    def test_cover_edges_increase_rank_by_one(self):
        lattice = DissociationLattice(parse_query(EXAMPLE_17))
        for node in lattice.nodes:
            for j in node.covers:
                successor = lattice.nodes[j]
                assert successor.delta.size() == node.delta.size() + 1
                assert node.delta < successor.delta

    def test_every_non_top_node_has_a_cover(self):
        lattice = DissociationLattice(parse_query(EXAMPLE_17))
        top_rank = lattice.top().delta.size()
        for node in lattice.nodes:
            if node.delta.size() < top_rank:
                assert node.covers

    def test_node_lookup(self):
        q = parse_query(EXAMPLE_17)
        lattice = DissociationLattice(q)
        delta = Dissociation({"U": frozenset([x])})
        node = lattice.node(delta)
        assert node.safe and node.minimal_safe

    def test_safety_toggles_in_general(self):
        # Sec. 3.1: safety is not upward closed for this query
        q = parse_query("q() :- R(x), S(x), T(y)")
        lattice = DissociationLattice(q)
        assert not lattice.upset_is_safe_closed()

    def test_render(self):
        text = DissociationLattice(parse_query(EXAMPLE_17)).render()
        assert "minimal" in text and "safe" in text and "∆⊥" in text


class TestEquivalenceClasses:
    def test_no_deterministic_all_singletons(self):
        lattice = DissociationLattice(parse_query("q() :- R(x), S(x,y), T(y)"))
        classes = lattice.equivalence_classes_p()
        assert all(len(c) == 1 for c in classes)

    def test_deterministic_t_merges_classes(self):
        # Fig. 3b: with T deterministic, ∆0 ≡p ∆2 (dissociating T is free)
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        lattice = DissociationLattice(q, deterministic={"T"})
        classes = lattice.equivalence_classes_p()
        sizes = sorted(len(c) for c in classes)
        assert sizes == [2, 2]

    def test_all_deterministic_single_class(self):
        # Fig. 3c: with R and T deterministic all four collapse into one
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        lattice = DissociationLattice(q, deterministic={"R", "T"})
        classes = lattice.equivalence_classes_p()
        assert len(classes) == 1
        assert len(classes[0]) == 4


class TestIncidenceMatrix:
    def test_plain_matrix(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        text = incidence_matrix(q)
        lines = text.splitlines()
        assert len(lines) == 4  # header + 3 relations
        assert "R" in lines[1] and "o" in lines[1]

    def test_dissociated_cell(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        delta = Dissociation({"T": frozenset([x])})
        text = incidence_matrix(q, delta)
        t_line = [l for l in text.splitlines() if l.lstrip().startswith("T")][0]
        assert "*" in t_line

    def test_deterministic_marker(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        delta = Dissociation({"T": frozenset([x])})
        text = incidence_matrix(q, delta, deterministic={"T"})
        t_line = [l for l in text.splitlines() if "T" in l][0]
        assert "(o)" in t_line and "Td" in t_line.replace(" ", "")

    def test_head_variables_not_shown(self):
        q = parse_query("q(z) :- R(z,x), S(x)")
        text = incidence_matrix(q)
        assert "z" not in text.splitlines()[0]
