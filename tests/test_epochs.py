"""Per-table epoch vectors (PR 7): aliasing regressions, selective
invalidation, and randomized interleaving properties.

The epoch of a table is ``(creation_stamp, mutation_counter)``; the
creation stamp is handed out by the database, so a dropped-and-re-added
table can never alias its predecessor even when the insert counts
agree.  Every cache keys on the epoch vector of exactly the relations a
query touches, so a write to a disjoint table must evict *nothing* —
the counters prove it.
"""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    DissociationEngine,
    EngineConfig,
    Optimizations,
    connect,
    parse_query,
)
from repro.db.database import ProbabilisticDatabase
from repro.db.sqlite_backend import SQLiteBackend
from repro.engine.stats import StatisticsCatalog
from repro.workloads import chain_database, chain_query
from repro.workloads.stars import ANCHOR, star_database, star_query

from .helpers import assert_scores_close

ALL_PLANS = Optimizations(single_plan=False, reuse_views=True)

BACKENDS = ("memory", "sqlite")


def two_table_db() -> ProbabilisticDatabase:
    db = ProbabilisticDatabase()
    db.add_table("R", [((1, 2), 0.5), ((2, 3), 0.25)])
    db.add_table("S", [((1,), 0.5), ((2,), 0.75)])
    return db


# ----------------------------------------------------------------------
# database-level epochs
# ----------------------------------------------------------------------
class TestTableEpochs:
    def test_insert_advances_epoch(self):
        db = two_table_db()
        before = db.table_epoch("R")
        db.table("R").insert((7, 8), 0.5)
        after = db.table_epoch("R")
        assert after != before
        assert after[0] == before[0]  # same incarnation
        assert db.table_epoch("S") == (db.table("S").creation_stamp, 2)

    def test_drop_readd_never_aliases(self):
        db = two_table_db()
        old_epoch = db.table_epoch("R")
        old_counter = db.table("R").version
        db.drop_table("R")
        # same insert count -> same per-table mutation counter: the
        # exact trap the creation stamp exists to defuse.
        db.add_table("R", [((9, 9), 0.5), ((8, 8), 0.25)])
        assert db.table("R").version == old_counter
        assert db.table_epoch("R") != old_epoch

    def test_touch_taints_every_table(self):
        db = two_table_db()
        before = db.table_epochs()
        version = db.version
        db.touch()
        assert db.version != version
        after = db.table_epochs()
        assert set(after) == set(before)
        assert all(after[name] != before[name] for name in before)

    def test_epoch_vector_sorted_deduplicated_and_none_for_missing(self):
        db = two_table_db()
        vector = db.epoch_vector(["S", "R", "R", "Z"])
        assert vector == (
            ("R", db.table_epoch("R")),
            ("S", db.table_epoch("S")),
            ("Z", None),
        )
        assert db.table_epoch("Z") is None

    def test_db_version_distinguishes_incarnations(self):
        db = two_table_db()
        v1 = db.version
        db.drop_table("S")
        db.add_table("S", [((5,), 0.5), ((6,), 0.75)])
        assert db.version != v1


# ----------------------------------------------------------------------
# add_table ambiguity detection (satellite 2)
# ----------------------------------------------------------------------
class TestAddTableAmbiguity:
    def test_pair_with_out_of_range_probability_raises(self):
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError, match="ambiguous"):
            db.add_table("E", [((1, 2), 7)])

    def test_pairs_mixed_with_tuple_headed_bare_rows_raise(self):
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError, match="ambiguous"):
            db.add_table("E", [((1, 2), 0.5), ((3, 4), "x")])

    def test_declared_arity_exposes_misread_data_row(self):
        db = ProbabilisticDatabase()
        # Read as a (row, p) pair the row has arity 1; read as a data
        # row it fits arity=2 exactly — the caller meant a data row.
        with pytest.raises(ValueError, match="ambiguous"):
            db.add_table("E", [((1,), 0.5)], arity=2)

    def test_error_tells_caller_how_to_disambiguate(self):
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError, match=r"\(row, probability\)"):
            db.add_table("E", [((1, 2), 7)])

    def test_explicit_pairs_with_matching_arity_still_work(self):
        # The tpch loaders pass arity=2 alongside (row, p) pairs of
        # 2-tuples; that usage is unambiguous and must keep working.
        db = ProbabilisticDatabase()
        table = db.add_table("R", [((1, 2), 0.5), ((3, 4), 1.0)], arity=2)
        assert dict(table) == {(1, 2): 0.5, (3, 4): 1.0}

    def test_bare_rows_and_probability_one_ints_still_work(self):
        db = ProbabilisticDatabase()
        table = db.add_table("R", [(1, 2), (3, 4)])
        assert dict(table) == {(1, 2): 1.0, (3, 4): 1.0}


# ----------------------------------------------------------------------
# statistics-catalog aliasing regression (satellite 1)
# ----------------------------------------------------------------------
class TestStatisticsAliasing:
    def test_catalog_rebuilds_after_drop_readd_with_equal_counter(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), ((2,), 0.5)])
        catalog = StatisticsCatalog(db)
        first = catalog.table_stats("R", (np.array([1, 2]),))
        assert catalog.recomputations == 1
        old_counter = db.table("R").version
        db.drop_table("R")
        db.add_table("R", [((7,), 0.5), ((7,), 0.5)])
        # the old bug: equal mutation counters made the catalog serve
        # the previous incarnation's summary
        assert db.table("R").version == old_counter
        second = catalog.table_stats("R", (np.array([7, 7]),))
        assert catalog.recomputations == 2
        assert second is not first
        assert second.columns[0].distinct == 1
        assert first.columns[0].distinct == 2

    def test_engine_scores_track_drop_readd_with_equal_counter(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), ((2,), 0.5)])
        query = parse_query("q(x) :- R(x)")
        engine = DissociationEngine(db, EngineConfig(backend="memory"))
        first = engine.evaluate(query)
        db.drop_table("R")
        db.add_table("R", [((1,), 0.9), ((2,), 0.9)])
        second = engine.evaluate(query)
        assert first.scores == {(1,): 0.5, (2,): 0.5}
        assert second.scores == {(1,): 0.9, (2,): 0.9}


# ----------------------------------------------------------------------
# SQLite snapshot: incremental refresh + selective view invalidation
# ----------------------------------------------------------------------
class _FakeKey:
    """A registry key with a declared relation footprint."""

    def __init__(self, *relations: str) -> None:
        self._relations = frozenset(relations)

    def relations(self) -> frozenset:
        return self._relations


class TestSQLiteRefresh:
    def test_refresh_is_noop_when_version_unchanged(self):
        db = two_table_db()
        backend = SQLiteBackend(db)
        assert backend.refresh() == frozenset()

    def test_refresh_reloads_only_changed_tables(self):
        db = two_table_db()
        backend = SQLiteBackend(db)
        s_epoch = backend.table_epoch("S")
        db.table("R").insert((7, 8), 0.125)
        assert backend.refresh() == frozenset({"R"})
        rows = backend.connection.execute(
            "SELECT COUNT(*) FROM R"
        ).fetchone()[0]
        assert rows == 3
        assert backend.table_epoch("R") == db.table_epoch("R")
        assert backend.table_epoch("S") == s_epoch
        assert backend.source_version == db.version

    def test_refresh_handles_drop_add_and_schema_change(self):
        db = two_table_db()
        backend = SQLiteBackend(db)
        db.drop_table("S")
        db.add_table("T", [((4, 5), 0.5)])
        db.drop_table("R")
        db.add_table("R", [((9,), 0.5)])  # arity 2 -> 1
        assert backend.refresh() == frozenset({"R", "S", "T"})
        with pytest.raises(sqlite3.OperationalError):
            backend.connection.execute("SELECT * FROM S")
        assert backend.connection.execute(
            "SELECT COUNT(*) FROM T"
        ).fetchone()[0] == 1
        # schema-changed R was rebuilt with one data column + prob
        columns = backend.connection.execute(
            "SELECT COUNT(*) FROM pragma_table_info('R')"
        ).fetchone()[0]
        assert columns == 2

    def test_refresh_clears_reduction_token_memo(self):
        db = two_table_db()
        backend = SQLiteBackend(db)
        recipe = ["DELETE FROM R WHERE 0"]
        first = backend.reduction_token(recipe, ["R"])
        assert backend.reduction_token(recipe, ["R"]) == first  # memo warm
        db.table("R").insert((7, 8), 0.125)
        backend.refresh()
        assert backend.reduction_token(recipe, ["R"]) != first

    def test_view_invalidation_drops_only_intersecting_footprints(self):
        db = two_table_db()
        backend = SQLiteBackend(db)
        registry = backend.view_registry
        registry.register(_FakeKey("R"), "SELECT 1 AS c, 0.5 AS prob")
        registry.register(_FakeKey("S"), "SELECT 2 AS c, 0.5 AS prob")
        registry.register("opaque-key", "SELECT 3 AS c, 0.5 AS prob")
        assert registry.cache_stats()["size"] == 3
        # touching R drops the R view and the footprint-unknown view
        # (conservative), never the S view
        dropped = registry.invalidate_relations({"R"})
        assert dropped == 2
        stats = registry.cache_stats()
        assert stats["size"] == 1
        assert stats["invalidations"] == 2
        assert stats["evictions"] == 0
        assert registry.lookup(_FakeKey("S")) is None  # distinct key obj
        assert registry.invalidate_relations({"Z"}) == 0

    def test_refresh_invalidates_views_of_changed_relations_only(self):
        db = two_table_db()
        backend = SQLiteBackend(db)
        registry = backend.view_registry
        r_key, s_key = _FakeKey("R"), _FakeKey("S")
        registry.register(r_key, "SELECT 1 AS c, 0.5 AS prob")
        registry.register(s_key, "SELECT 2 AS c, 0.5 AS prob")
        db.table("R").insert((7, 8), 0.125)
        backend.refresh()
        assert registry.lookup(r_key) is None
        assert registry.lookup(s_key) is not None


# ----------------------------------------------------------------------
# the acceptance criterion: disjoint writes evict nothing (chain-7)
# ----------------------------------------------------------------------
class TestDisjointWriteEvictsNothing:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chain7_disjoint_write_keeps_result_views_and_stats(
        self, backend
    ):
        db = chain_database(7, 30, seed=7)
        sub = parse_query("q(x0, x2) :- R1(x0, x1), R2(x1, x2)")
        config = EngineConfig(backend=backend, write_factor=0.0)
        with connect(db, config, optimizations=ALL_PLANS) as session:
            first = session.evaluate(sub)
            engine = session.engine
            evaluations = engine.evaluation_count
            if backend == "memory":
                cache = engine._cache_for(db)
                recomputations = cache.statistics.recomputations
            else:
                registry = engine.sqlite.view_registry
                views_before = registry.cache_stats()

            # write confined to R5 — disjoint from the cached query
            session.mutate(
                lambda d: d.table("R5").insert((90_001, 90_002), 0.25)
            )
            assert session.results.stats()["evictions"] == 0
            again = session.evaluate(sub)
            assert again.cached
            assert again.scores == first.scores
            assert engine.evaluation_count == evaluations

            # drive the engine directly so the snapshot refreshes and
            # the engine-level caches get exercised post-write
            direct = engine.evaluate(sub, ALL_PLANS)
            assert_scores_close(direct.scores, first.scores, 1e-12)
            if backend == "memory":
                assert cache.statistics.recomputations == recomputations
            else:
                views_mid = registry.cache_stats()
                assert views_mid["invalidations"] == 0
                assert views_mid["size"] >= views_before["size"]
                stats_catalog = engine._sqlite_stats
                recomputations = (
                    stats_catalog.recomputations if stats_catalog else None
                )
                # another disjoint write, then a repeat: the refresh
                # must leave the query's views and statistics alone
                session.mutate(
                    lambda d: d.table("R5").insert((90_005, 90_006), 0.25)
                )
                engine.evaluate(sub, ALL_PLANS)
                views_after = registry.cache_stats()
                assert views_after["hits"] > views_mid["hits"]
                assert views_after["misses"] == views_mid["misses"]
                assert views_after["invalidations"] == 0
                if recomputations is not None:
                    assert stats_catalog.recomputations == recomputations

            # control: a write to R1 must invalidate the cached entry
            session.mutate(
                lambda d: d.table("R1").insert((90_003, 90_004), 0.25)
            )
            assert session.results.stats()["evictions"] >= 1
            assert not session.evaluate(sub).cached
            if backend == "sqlite":
                engine.sqlite  # trigger the refresh
                assert registry.cache_stats()["invalidations"] > 0


# ----------------------------------------------------------------------
# randomized interleavings (satellite 4)
# ----------------------------------------------------------------------
def _chain_workload():
    db = chain_database(3, 10, seed=3)
    full = chain_query(3)
    queries = (
        full,
        parse_query("q(x0, x2) :- R1(x0, x1), R2(x1, x2)"),
        parse_query("q(x2, x3) :- R3(x2, x3)"),
    )
    tables = ("R1", "R2", "R3")
    return db, queries, tables


def _star_workload():
    db = star_database(3, 10, seed=3)
    queries = (
        star_query(3),
        parse_query("q(y) :- R1(x, y)"),
        parse_query("q(x) :- R2(x)"),
    )
    tables = ("R0", "R1", "R2", "R3")
    return db, queries, tables


WORKLOADS = {"chain": _chain_workload, "star": _star_workload}


def _fresh_row(db: ProbabilisticDatabase, name: str, step: int) -> tuple:
    arity = db.table(name).arity
    if name == "R1" and any(
        isinstance(value, str) for row, _ in db.table(name) for value in row
    ):
        return (ANCHOR, 10_000 + step)
    return tuple(10_000 + step + i for i in range(arity))


def _drop_readd(db: ProbabilisticDatabase, name: str) -> None:
    """Re-add ``name`` with the same row count but halved probabilities
    — the same per-table mutation counter, different contents."""
    rows = [(row, p * 0.5) for row, p in db.table(name)]
    db.drop_table(name)
    db.add_table(name, rows)


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.integers(0, 2)),
        st.tuples(st.just("insert"), st.integers(0, 3)),
        st.tuples(st.just("drop_readd"), st.integers(0, 3)),
    ),
    max_size=7,
)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@settings(max_examples=10, deadline=None)
@given(ops=_OPS)
def test_interleaved_mutations_match_cold_engine(backend, workload, ops):
    """Replay a random interleaving of queries, single-table writes and
    drop/re-adds; every answer must match a cold engine on the current
    state, and entries over untouched relations must be served from the
    result cache (the hit counter proves survival)."""
    db, queries, tables = WORKLOADS[workload]()
    config = EngineConfig(backend=backend)
    # model: which queries have a warm, current cache entry
    warm = [False] * len(queries)

    def run_query(session, index):
        query = queries[index]
        hits_before = session.results.stats()["hits"]
        result = session.evaluate(query)
        hits_after = session.results.stats()["hits"]
        assert result.cached == warm[index]
        assert hits_after - hits_before == (1 if warm[index] else 0)
        assert result.epoch == db.epoch_vector(query.relations)
        cold = DissociationEngine(db, config).evaluate(query)
        # a cold engine interns value codes in its own order, so the
        # independent-or sums may differ in the last couple of ulps —
        # any staleness (probabilities halved, rows added) is orders of
        # magnitude larger than these tolerances
        tolerance = 1e-12 if backend == "memory" else 1e-9
        assert_scores_close(result.scores, cold.scores, tolerance)
        warm[index] = True

    with connect(db, config) as session:
        for step, (kind, index) in enumerate(ops):
            if kind == "query":
                run_query(session, index % len(queries))
                continue
            name = tables[index % len(tables)]
            if kind == "insert":
                row = _fresh_row(db, name, step)
                session.mutate(lambda d: d.table(name).insert(row, 0.25))
            else:
                session.mutate(lambda d: _drop_readd(d, name))
            for i, query in enumerate(queries):
                if name in query.relations:
                    warm[i] = False
        # closing sweep: every query consistent with the final state
        for index in range(len(queries)):
            run_query(session, index)
