"""The network serving tier: framing, server/client differential,
shared-memory snapshots, and the multi-process pool."""

from __future__ import annotations

import socket
import struct
import threading
import time
import zlib

import pytest

import repro
from repro import (
    EngineConfig,
    Optimizations,
    ProbabilisticDatabase,
    ServiceClosed,
    Session,
    parse_query,
)
from repro.db.shm import SharedSnapshotManager, attach_snapshot, seed_cache
from repro.engine.extensional import EvaluationCache
from repro.net import (
    BadMagic,
    ChecksumMismatch,
    FrameDecoder,
    FrameTooLarge,
    RemoteSession,
    TruncatedFrame,
    decode_frame,
    encode_frame,
    fork_available,
    serve,
    wire_query_key,
)
from repro.net.protocol import (
    _HEADER,
    _MAGIC,
    PROTOCOL_VERSION,
    result_from_wire,
    result_to_wire,
)
from repro.obs import merge_snapshots

from .helpers import ALL_OPTIMIZATION_COMBOS


def sample_database() -> ProbabilisticDatabase:
    db = ProbabilisticDatabase()
    db.add_table(
        "R", [((1,), 0.31), ((2,), 0.77), ((3,), 0.5)], columns=("a",)
    )
    db.add_table(
        "S",
        [((1, 1), 0.43), ((1, 2), 0.9), ((2, 2), 0.17), ((3, 1), 0.66)],
        columns=("a", "b"),
    )
    db.add_table("T", [((1,), 0.25), ((2,), 0.84)], columns=("b",))
    return db


QUERIES = [
    "q() :- R(x), S(x,y), T(y)",
    "q(x) :- R(x), S(x,y)",
    "q(y) :- S(x,y), T(y)",
]


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        payload = {"id": 7, "op": "ping", "nested": [1, [2, 3]]}
        frame = encode_frame(payload)
        decoded, consumed = decode_frame(frame + b"tail")
        assert decoded == payload
        assert consumed == len(frame)

    def test_torn_length_prefix_waits_for_more_bytes(self):
        frame = encode_frame({"id": 1})
        decoder = FrameDecoder()
        # feed the header one byte at a time: never an error, no output
        for i in range(len(frame) - 1):
            assert decoder.feed(frame[i : i + 1]) == []
        assert decoder.feed(frame[-1:]) == [{"id": 1}]

    def test_torn_frame_one_shot_decode_raises_truncated(self):
        frame = encode_frame({"id": 1})
        with pytest.raises(TruncatedFrame):
            decode_frame(frame[: len(frame) - 2])

    def test_bad_checksum_drops_frame_and_stream_survives(self):
        good = encode_frame({"id": 2})
        corrupt = bytearray(encode_frame({"id": 1}))
        corrupt[-1] ^= 0xFF  # flip a payload byte, CRC now wrong
        decoder = FrameDecoder()
        with pytest.raises(ChecksumMismatch):
            decoder.feed(bytes(corrupt))
        # the stream stays aligned: the next frame decodes normally
        assert decoder.feed(good) == [{"id": 2}]

    def test_oversized_frame_skipped_and_stream_survives(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        big = encode_frame({"id": 1, "pad": "x" * 100})
        with pytest.raises(FrameTooLarge):
            decoder.feed(big)
        assert decoder.feed(encode_frame({"id": 2})) == [{"id": 2}]

    def test_oversized_frame_split_across_feeds(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        big = encode_frame({"id": 1, "pad": "x" * 100})
        with pytest.raises(FrameTooLarge):
            decoder.feed(big[:20])
        # the rest of the refused payload is skipped silently
        assert decoder.feed(big[20:]) == []
        assert decoder.feed(encode_frame({"id": 2})) == [{"id": 2}]

    def test_bad_magic_is_fatal(self):
        decoder = FrameDecoder()
        with pytest.raises(BadMagic):
            decoder.feed(b"GARBAGE!" * 4)
        with pytest.raises(BadMagic):
            decoder.feed(encode_frame({"id": 1}))

    def test_error_carries_payloads_decoded_before_it(self):
        good = encode_frame({"id": 1})
        corrupt = bytearray(encode_frame({"id": 2}))
        corrupt[-1] ^= 0xFF
        decoder = FrameDecoder()
        with pytest.raises(ChecksumMismatch) as info:
            decoder.feed(good + bytes(corrupt))
        assert info.value.decoded == [{"id": 1}]

    def test_wire_query_key_stable_under_renaming(self):
        a = parse_query("q(x) :- R(x), S(x,y)")
        b = parse_query("q(u) :- S(u,v), R(u)")
        assert wire_query_key(a) == wire_query_key(b)
        c = parse_query("q(y) :- R(y), S(y,z)")
        assert wire_query_key(a) == wire_query_key(c)

    def test_result_round_trip_is_bit_identical(self):
        db = sample_database()
        result = repro.DissociationEngine(db).evaluate(
            parse_query(QUERIES[1])
        )
        back = result_from_wire(
            __import__("json").loads(
                __import__("json").dumps(result_to_wire(result))
            )
        )
        assert back.scores == result.scores  # == is bit-exact on floats
        assert back.epoch == result.epoch
        assert back.optimizations == result.optimizations
        assert back.plan_count == result.plan_count


# ----------------------------------------------------------------------
# client <-> server differential
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_remote_matches_local_all_opt_combos(self, backend):
        db = sample_database()
        config = EngineConfig(backend=backend)
        with Session(db, config) as local, serve(
            db, config, port=0
        ) as server, RemoteSession(server.url, config) as remote:
            for opts in ALL_OPTIMIZATION_COMBOS:
                for text in QUERIES:
                    mine = local.evaluate(text, opts)
                    theirs = remote.evaluate(text, opts)
                    assert theirs.scores.keys() == mine.scores.keys()
                    for answer, score in mine.scores.items():
                        assert abs(theirs.scores[answer] - score) <= 1e-12

    def test_mid_stream_mutation_bumps_epochs_over_the_wire(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server, RemoteSession(
            server.url
        ) as remote:
            before = remote.evaluate(QUERIES[1])
            repeat = remote.evaluate(QUERIES[1])
            assert repeat.cached and repeat.scores == before.scores

            epochs = remote.mutate(
                lambda d: d.update_probability("R", (1,), 0.99)
            )
            moved = dict(epochs)
            assert moved["R"] != dict(before.epoch)["R"]

            after = remote.evaluate(QUERIES[1])
            assert not after.cached
            local = Session(db, EngineConfig()).evaluate(QUERIES[1])
            assert after.scores == local.scores
            assert after.scores != before.scores

    def test_repeat_traffic_skips_the_parser(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server, RemoteSession(
            server.url
        ) as remote:
            repeats = 5
            for _ in range(repeats):
                remote.evaluate(QUERIES[0])
            metrics = server.observer.metrics
            assert metrics.counter("net.parses") == 1
            assert metrics.counter("net.cache.hits") == repeats - 1
            assert metrics.counter("net.cache.misses") == 1

    def test_submit_gather_and_evaluate_many(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server, RemoteSession(
            server.url
        ) as remote:
            futures = [remote.submit(text) for text in QUERIES]
            results = remote.gather(futures)
            assert [r.scores for r in results] == [
                remote.evaluate(t).scores for t in QUERIES
            ]
            many = remote.evaluate_many(QUERIES)
            assert [r.scores for r in many] == [
                r.scores for r in results
            ]

    def test_stats_trace_and_metrics_ops(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server, RemoteSession(
            server.url
        ) as remote:
            result = remote.evaluate(QUERIES[0])
            stats = remote.stats()
            assert stats["wire_cache"]["misses"] == 1
            assert stats["pool"]["kind"] in ("thread", "process")
            assert remote.last_server_trace
            tree = remote.trace(result)
            assert tree is not None and tree["roots"]
            text = remote.metrics_text()
            assert "repro_net_requests" in text

    def test_error_mapping_and_connection_survives(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server, RemoteSession(
            server.url
        ) as remote:
            with pytest.raises(KeyError):
                remote.evaluate("q() :- Missing(x)")
            with pytest.raises(ValueError):
                remote._request(
                    {
                        "op": "evaluate",
                        "key": "k",
                        "opts": [False, False, False],
                        "relations": [],
                        "query": "q() :- R(x)",
                        "digest": "not-the-server-digest",
                    }
                )
            # the connection survives typed failures
            assert remote.evaluate(QUERIES[0]).scores

    def test_url_dispatch_via_connect(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server:
            with repro.connect(url=server.url) as remote:
                assert isinstance(remote, RemoteSession)
                assert remote.evaluate(QUERIES[0]).scores
            # a repro:// string in the db slot dispatches too
            with repro.connect(server.url) as remote:
                assert isinstance(remote, RemoteSession)


# ----------------------------------------------------------------------
# live-socket frame fuzzing
# ----------------------------------------------------------------------
class TestLiveProtocolErrors:
    def _recv_frames(self, sock, count, timeout=10.0):
        decoder = FrameDecoder()
        frames = []
        sock.settimeout(timeout)
        while len(frames) < count:
            data = sock.recv(65536)
            if not data:
                break
            frames.extend(decoder.feed(data))
        return frames

    def test_corrupt_frame_gets_typed_error_and_connection_survives(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port)
            ) as sock:
                corrupt = bytearray(encode_frame({"id": 1, "op": "ping"}))
                corrupt[-1] ^= 0xFF
                sock.sendall(bytes(corrupt))
                (error,) = self._recv_frames(sock, 1)
                assert error["ok"] is False
                assert error["error"]["kind"] == "ChecksumMismatch"
                assert error["trace"].startswith("srv-")
                # same connection, next frame is served normally
                sock.sendall(encode_frame({"id": 2, "op": "ping"}))
                (pong,) = self._recv_frames(sock, 1)
                assert pong["ok"] and pong["pong"] and pong["id"] == 2

    def test_oversized_frame_survives_on_the_wire(self):
        db = sample_database()
        with serve(
            db, EngineConfig(), port=0, max_frame_bytes=1024
        ) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port)
            ) as sock:
                sock.sendall(
                    encode_frame({"id": 1, "op": "ping", "pad": "x" * 4096})
                )
                (error,) = self._recv_frames(sock, 1)
                assert error["error"]["kind"] == "FrameTooLarge"
                sock.sendall(encode_frame({"id": 2, "op": "ping"}))
                (pong,) = self._recv_frames(sock, 1)
                assert pong["ok"] and pong["id"] == 2

    def test_bad_magic_closes_the_connection(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port)
            ) as sock:
                sock.sendall(b"NOTAFRAME" * 4)
                (error,) = self._recv_frames(sock, 1)
                assert error["error"]["kind"] == "BadMagic"
                sock.settimeout(10.0)
                rest = b"x"
                try:
                    while rest:
                        rest = sock.recv(65536)
                except OSError:
                    rest = b""
                assert rest == b""  # server hung up

    def test_torn_frame_across_sends_is_reassembled(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port)
            ) as sock:
                frame = encode_frame({"id": 3, "op": "ping"})
                sock.sendall(frame[:5])
                time.sleep(0.05)
                sock.sendall(frame[5:])
                (pong,) = self._recv_frames(sock, 1)
                assert pong["ok"] and pong["id"] == 3


# ----------------------------------------------------------------------
# shared-memory snapshots
# ----------------------------------------------------------------------
class TestSharedSnapshots:
    def test_export_attach_round_trip(self):
        db = sample_database()
        with SharedSnapshotManager(db) as manager:
            snap = attach_snapshot(manager.export())
            try:
                assert snap.table_names == db.table_names
                for name in db.table_names:
                    assert snap.table(name).rows == db.table(name).rows
                    assert snap.table(name).epoch == db.table_epoch(name)
                assert snap.epoch_vector(["R", "S"]) == db.epoch_vector(
                    ["R", "S"]
                )
            finally:
                snap.close()

    def test_seeded_cache_evaluates_identically(self):
        db = sample_database()
        query = parse_query(QUERIES[0])
        baseline = repro.DissociationEngine(db).evaluate(query).scores
        with SharedSnapshotManager(db) as manager:
            snap = attach_snapshot(manager.export())
            try:
                engine = repro.DissociationEngine(snap)
                cache = EvaluationCache(snap)
                seed_cache(cache, snap)
                engine._memory_cache = cache
                assert engine.evaluate(query).scores == baseline
            finally:
                snap.close()

    def test_refresh_reexports_only_changed_tables(self):
        db = sample_database()
        with SharedSnapshotManager(db) as manager:
            meta1 = manager.export()
            db.insert("R", (9,), 0.1)
            meta2 = manager.refresh()
            assert meta2["generation"] == meta1["generation"] + 1
            assert (
                meta2["tables"]["R"]["segment"]
                != meta1["tables"]["R"]["segment"]
            )
            assert (
                meta2["tables"]["S"]["segment"]
                == meta1["tables"]["S"]["segment"]
            )
            snap = attach_snapshot(meta2)
            try:
                assert snap.table("R").rows == db.table("R").rows
            finally:
                snap.close()
            manager.release()

    def test_reattach_swaps_generation_in_place(self):
        db = sample_database()
        with SharedSnapshotManager(db) as manager:
            snap = attach_snapshot(manager.export())
            try:
                token = snap.version
                db.insert("T", (7,), 0.2)
                snap.reattach(manager.refresh())
                manager.release()
                assert snap.version != token
                assert snap.table("T").rows == db.table("T").rows
            finally:
                snap.close()


# ----------------------------------------------------------------------
# the multi-process pool (fork platforms only)
# ----------------------------------------------------------------------
needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform cannot fork workers"
)


@needs_fork
class TestProcessPool:
    def test_process_pool_differential_and_mutation(self):
        db = sample_database()
        config = EngineConfig()
        with Session(db, config) as local, serve(
            db, config, port=0, processes=2
        ) as server, RemoteSession(server.url) as remote:
            assert server.pool.stats()["kind"] == "process"
            for text in QUERIES:
                assert (
                    remote.evaluate(text).scores
                    == local.evaluate(text).scores
                )
            remote.mutate(lambda d: d.insert("S", (3, 2), 0.41))
            for text in QUERIES:
                mine = local.evaluate(text)
                theirs = remote.evaluate(text)
                assert theirs.scores == mine.scores
            assert server.pool.stats()["generation"] == 2

    def test_worker_metrics_are_merged(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0, processes=2) as server:
            with RemoteSession(server.url) as remote:
                for text in QUERIES:
                    remote.evaluate(text)
                text = remote.metrics_text()
        assert "repro_pool_worker_evaluations" in text

    def test_fallback_to_thread_pool_for_sqlite(self):
        db = sample_database()
        with serve(
            db, EngineConfig(backend="sqlite"), port=0, processes=2
        ) as server:
            assert server.pool.stats()["kind"] == "thread"
            with RemoteSession(server.url) as remote:
                assert remote.evaluate(QUERIES[0]).scores


# ----------------------------------------------------------------------
# cross-process metrics merge
# ----------------------------------------------------------------------
class TestMergeSnapshots:
    def test_counters_sum_histograms_combine(self):
        a = {
            "counters": {"x": 2, "y": 1},
            "gauges": {"g": 1.0},
            "histograms": {
                "h": {"count": 2, "sum": 3.0, "min": 1.0, "max": 2.0}
            },
            "collected": {"one": {"n": 1}},
        }
        b = {
            "counters": {"x": 3},
            "gauges": {"g": 5.0},
            "histograms": {
                "h": {"count": 1, "sum": 7.0, "min": 7.0, "max": 7.0},
                "empty": {"count": 0, "sum": 0.0},
            },
            "collected": {"two": {"n": 2}},
        }
        merged = merge_snapshots(a, b)
        assert merged["counters"] == {"x": 5, "y": 1}
        assert merged["gauges"]["g"] == 5.0  # last write wins
        h = merged["histograms"]["h"]
        assert h["count"] == 3 and h["sum"] == 10.0
        assert h["min"] == 1.0 and h["max"] == 7.0
        assert h["mean"] == pytest.approx(10.0 / 3)
        assert "empty" not in merged["histograms"]
        assert merged["collected"] == {"one": {"n": 1}, "two": {"n": 2}}


# ----------------------------------------------------------------------
# client lifecycle
# ----------------------------------------------------------------------
class TestClientLifecycle:
    def test_closed_session_raises_typed(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server:
            remote = RemoteSession(server.url)
            remote.close()
            with pytest.raises(ServiceClosed):
                remote.evaluate(QUERIES[0])

    def test_reconnect_after_server_side_drop(self):
        db = sample_database()
        with serve(db, EngineConfig(), port=0) as server:
            remote = RemoteSession(server.url)
            try:
                assert remote.evaluate(QUERIES[0]).scores
                # kill the transport under the client; the next
                # idempotent request redials transparently
                remote._sock.shutdown(socket.SHUT_RDWR)
                deadline = time.time() + 5.0
                while remote._sock is not None and time.time() < deadline:
                    time.sleep(0.01)
                assert remote.evaluate(QUERIES[0]).scores
                assert remote.reconnects >= 1
            finally:
                remote.close()
