"""Tests for ranking metrics (AP@k with ties) and the rankers."""

import math
import random

import pytest

from repro.core import parse_query
from repro.db import ProbabilisticDatabase
from repro.ranking import (
    average_precision_at_k,
    mean_average_precision,
    random_ranking_ap,
    rank_by_dissociation,
    rank_by_exact,
    rank_by_lineage_size,
    rank_by_monte_carlo,
    rank_by_relative_weights,
    tied_rank_intervals,
    top_k,
)

from .helpers import random_database_for


class TestTiedRankIntervals:
    def test_no_ties(self):
        scores = {"a": 3.0, "b": 2.0, "c": 1.0}
        intervals = tied_rank_intervals(scores)
        assert intervals == {"a": (1, 1), "b": (2, 2), "c": (3, 3)}

    def test_full_tie(self):
        scores = {"a": 1.0, "b": 1.0, "c": 1.0}
        assert tied_rank_intervals(scores) == {
            "a": (1, 3),
            "b": (1, 3),
            "c": (1, 3),
        }

    def test_partial_tie(self):
        scores = {"a": 2.0, "b": 1.0, "c": 1.0, "d": 0.5}
        intervals = tied_rank_intervals(scores)
        assert intervals["a"] == (1, 1)
        assert intervals["b"] == intervals["c"] == (2, 3)
        assert intervals["d"] == (4, 4)


class TestTopK:
    def test_ordering(self):
        scores = {"a": 0.1, "b": 0.9, "c": 0.5}
        assert top_k(scores, 2) == ["b", "c"]

    def test_deterministic_tie_break(self):
        scores = {"a": 0.5, "b": 0.5}
        assert top_k(scores, 1) == top_k(dict(reversed(list(scores.items()))), 1)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        gt = {i: 25 - i for i in range(25)}
        assert average_precision_at_k(gt, gt, k=10) == pytest.approx(1.0)

    def test_random_baseline_25_answers(self):
        # all-tied ranking of 25 answers: AP@10 ≈ 0.220 (the paper's
        # "random average precision" baseline)
        gt = {i: 25 - i for i in range(25)}
        flat = {i: 1.0 for i in range(25)}
        assert average_precision_at_k(flat, gt, k=10) == pytest.approx(0.22)
        assert random_ranking_ap(25, 10) == pytest.approx(0.22)

    def test_reversed_ranking_is_poor(self):
        gt = {i: 25 - i for i in range(25)}
        reverse = {i: i for i in range(25)}
        ap = average_precision_at_k(reverse, gt, k=10)
        assert ap < 0.1

    def test_analytic_matches_sampled_tie_breaking(self):
        rng = random.Random(0)
        gt = {i: 20 - i for i in range(20)}
        returned = {i: rng.choice([1.0, 2.0, 3.0]) for i in range(20)}
        analytic = average_precision_at_k(returned, gt, k=10)

        # Monte Carlo over random tie-breaks
        def sampled_ap() -> float:
            jitter = {i: (returned[i], rng.random()) for i in returned}
            order = sorted(jitter, key=lambda i: (-jitter[i][0], jitter[i][1]))
            total = 0.0
            for depth in range(1, 11):
                rel = set(top_k(gt, depth))
                got = set(order[:depth])
                total += len(rel & got) / depth
            return total / 10

        estimate = sum(sampled_ap() for _ in range(4000)) / 4000
        assert abs(analytic - estimate) < 0.02

    def test_missing_answers_ranked_last(self):
        gt = {"a": 3.0, "b": 2.0, "c": 1.0}
        partial = {"a": 1.0}
        ap = average_precision_at_k(partial, gt, k=2)
        assert 0.0 < ap < 1.0

    def test_k_larger_than_answers(self):
        gt = {"a": 1.0, "b": 0.5}
        assert average_precision_at_k(gt, gt, k=10) == pytest.approx(1.0)

    def test_empty_ground_truth_rejected(self):
        with pytest.raises(ValueError):
            average_precision_at_k({}, {}, k=10)

    def test_map_is_mean(self):
        gt = {i: 10 - i for i in range(10)}
        pairs = [(gt, gt), ({i: 1.0 for i in range(10)}, gt)]
        value = mean_average_precision(pairs, k=10)
        single = (
            average_precision_at_k(gt, gt, 10)
            + average_precision_at_k({i: 1.0 for i in range(10)}, gt, 10)
        ) / 2
        assert value == pytest.approx(single)

    def test_random_ranking_ap_small_n(self):
        # fewer answers than k: all answers retrieved at depth ≥ n
        assert random_ranking_ap(1, 10) == pytest.approx(1.0)


class TestRankers:
    def _setup(self):
        q = parse_query("q(z) :- R(z,x), S(x,y), T(y)")
        db = random_database_for(q, random.Random(90), domain_size=4, fill=0.6)
        return q, db

    def test_dissociation_upper_bounds_exact(self):
        q, db = self._setup()
        diss = rank_by_dissociation(q, db)
        exact = rank_by_exact(q, db)
        assert set(diss) == set(exact)
        for a in exact:
            assert diss[a] >= exact[a] - 1e-9

    def test_dissociation_ranking_quality_high(self):
        # larger instance: enough answers for a meaningful AP@10
        q = parse_query("q(z) :- R(z,x), S(x,y), T(y)")
        db = random_database_for(
            q, random.Random(91), domain_size=8, fill=0.4, p_max=0.4
        )
        diss = rank_by_dissociation(q, db)
        exact = rank_by_exact(q, db)
        assert len(exact) >= 6
        assert average_precision_at_k(diss, exact, k=10) > 0.8

    def test_mc_beats_lineage_with_enough_samples(self):
        q, db = self._setup()
        exact = rank_by_exact(q, db)
        mc = rank_by_monte_carlo(q, db, samples=20_000, seed=1)
        lineage = rank_by_lineage_size(q, db)
        ap_mc = average_precision_at_k(mc, exact, k=10)
        ap_lineage = average_precision_at_k(lineage, exact, k=10)
        assert ap_mc >= ap_lineage - 0.05

    def test_lineage_sizes_are_integers(self):
        q, db = self._setup()
        for v in rank_by_lineage_size(q, db).values():
            assert v == int(v)

    def test_relative_weights_ranking(self):
        q, db = self._setup()
        weights = rank_by_relative_weights(q, db, factor=1e-3)
        exact = rank_by_exact(q, db)
        assert set(weights) == set(exact)
        # the scaled ranking correlates with GT well above random
        ap = average_precision_at_k(weights, exact, k=10)
        assert ap > random_ranking_ap(len(exact), 10)
