"""Failure-injection tests: wrong inputs must fail loudly and precisely."""

import pytest

from repro.api import EngineConfig
from repro.core import (
    Atom,
    ConjunctiveQuery,
    UnsafeQueryError,
    Variable,
    parse_query,
    safe_plan,
)
from repro.db import ProbabilisticDatabase
from repro.engine import DissociationEngine, SQLCompiler, plan_scores
from repro.lineage import DNF, exact_probability

x, y = Variable("x"), Variable("y")


class TestMissingData:
    def test_query_over_missing_table(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        q = parse_query("q() :- R(x), S(x,y)")
        engine = DissociationEngine(db)
        with pytest.raises(KeyError, match="S"):
            engine.propagation_score(q)

    def test_arity_mismatch_between_query_and_table(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.5)])  # binary
        q = parse_query("q() :- R(x)")  # unary atom
        engine = DissociationEngine(db)
        with pytest.raises(Exception):
            engine.propagation_score(q)

    def test_sql_compiler_missing_schema(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        q = parse_query("q() :- R(x), S(x)")
        compiler = SQLCompiler(db.schema)
        from repro.core import minimal_plans

        with pytest.raises(KeyError):
            for plan in minimal_plans(q):
                compiler.compile(plan, q)


class TestBadProbabilities:
    def test_negative_probability(self):
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError):
            db.add_table("R", [((1,), -0.1)])

    def test_probability_above_one(self):
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError):
            db.add_table("R", [((1,), 1.00001)])

    def test_exact_evaluator_missing_variable_treated_impossible(self):
        # a variable without a recorded marginal is impossible (p = 0)
        f = DNF([["a"]])
        assert exact_probability(f, {}) == 0.0


class TestBadPlans:
    def test_safe_plan_on_unsafe_query(self):
        with pytest.raises(UnsafeQueryError):
            safe_plan(parse_query("q() :- R(x), S(x,y), T(y)"))

    def test_plan_scores_wrong_query_head(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.5)])
        from repro.core import Scan

        plan = Scan(Atom("R", (x, y)))
        wrong = ConjunctiveQuery([Atom("R", (x, y))], head=[x])
        with pytest.raises(ValueError):
            plan_scores(plan, wrong, db)

    def test_projection_of_foreign_variable(self):
        from repro.core import Project, Scan

        with pytest.raises(ValueError):
            Project([Variable("zz")], Scan(Atom("R", (x,))))


class TestClosedBackend:
    def test_execute_after_close(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        from repro.db import SQLiteBackend

        backend = SQLiteBackend(db)
        backend.close()
        import sqlite3

        with pytest.raises(sqlite3.ProgrammingError):
            backend.execute('SELECT * FROM "R"')

    def test_engine_recovers_after_invalidate(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((1, 2), 0.5)])
        q = parse_query("q() :- R(x), S(x,y)")
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        first = engine.propagation_score(q)
        engine.invalidate_sqlite()
        second = engine.propagation_score(q)
        assert first == second


class TestDegenerateQueries:
    def test_zero_arity_atom(self):
        db = ProbabilisticDatabase()
        db.add_table("N", [((), 0.7)], arity=0)
        db.add_table("R", [((1,), 0.5)])
        q = parse_query("q() :- N(), R(x)")
        engine = DissociationEngine(db)
        rho = engine.propagation_score(q)[()]
        exact = engine.exact(q)[()]
        assert abs(rho - 0.7 * 0.5) < 1e-12
        assert abs(exact - 0.35) < 1e-12

    def test_all_head_variables(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.5), ((3, 4), 0.25)])
        q = parse_query("q(x, y) :- R(x, y)")
        engine = DissociationEngine(db)
        scores = engine.propagation_score(q)
        assert scores == {(1, 2): 0.5, (3, 4): 0.25}

    def test_single_tuple_database(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((1, 1), 0.5)])
        db.add_table("T", [((1,), 0.5)])
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        engine = DissociationEngine(db)
        # one clause: rho should equal exact exactly
        assert abs(
            engine.propagation_score(q)[()] - engine.exact(q)[()]
        ) < 1e-12
