"""Tests for DNF formulas, exact probability, and Monte Carlo."""

import itertools
import random

import pytest

from repro.lineage import (
    DNF,
    ExactEvaluator,
    exact_probability,
    monte_carlo_many,
    monte_carlo_probability,
)


def brute_force_probability(formula: DNF, probs: dict) -> float:
    """Reference implementation: sum over all assignments."""
    variables = sorted(formula.variables(), key=repr)
    total = 0.0
    for bits in itertools.product([False, True], repeat=len(variables)):
        world = {v for v, b in zip(variables, bits) if b}
        weight = 1.0
        for v, b in zip(variables, bits):
            weight *= probs[v] if b else 1.0 - probs[v]
        if formula.evaluate(world):
            total += weight
    return total


class TestDNF:
    def test_false_and_true(self):
        assert DNF().is_false()
        assert DNF([[]]).is_true_constant()

    def test_deduplication(self):
        f = DNF([["a", "b"], ["b", "a"], ["c"]])
        assert len(f) == 2

    def test_variables(self):
        assert DNF([["a", "b"], ["c"]]).variables() == {"a", "b", "c"}

    def test_absorb(self):
        f = DNF([["a", "b"], ["a"], ["c", "d"]]).absorb()
        assert set(f.clauses) == {frozenset(["a"]), frozenset(["c", "d"])}

    def test_condition_true(self):
        f = DNF([["a", "b"], ["c"]]).condition("a", True)
        assert set(f.clauses) == {frozenset(["b"]), frozenset(["c"])}

    def test_condition_false(self):
        f = DNF([["a", "b"], ["c"]]).condition("a", False)
        assert set(f.clauses) == {frozenset(["c"])}

    def test_evaluate(self):
        f = DNF([["a", "b"], ["c"]])
        assert f.evaluate({"a", "b"})
        assert f.evaluate({"c"})
        assert not f.evaluate({"a"})

    def test_or(self):
        f = DNF([["a"]]).or_(DNF([["b"]]))
        assert len(f) == 2


class TestExactProbability:
    def test_example_7(self):
        # F = XY ∨ XZ: P = pq + pr − pqr
        probs = {"X": 0.5, "Y": 0.3, "Z": 0.8}
        f = DNF([["X", "Y"], ["X", "Z"]])
        p, q, r = probs["X"], probs["Y"], probs["Z"]
        assert abs(exact_probability(f, probs) - (p * q + p * r - p * q * r)) < 1e-12

    def test_false_formula(self):
        assert exact_probability(DNF(), {}) == 0.0

    def test_true_formula(self):
        assert exact_probability(DNF([[]]), {}) == 1.0

    def test_single_variable(self):
        assert exact_probability(DNF([["a"]]), {"a": 0.25}) == 0.25

    def test_certain_variable_stripped(self):
        f = DNF([["a", "b"]])
        assert exact_probability(f, {"a": 1.0, "b": 0.5}) == 0.5

    def test_impossible_variable_kills_clause(self):
        f = DNF([["a", "b"], ["c"]])
        assert (
            exact_probability(f, {"a": 0.0, "b": 0.5, "c": 0.25}) == 0.25
        )

    def test_independent_clauses(self):
        f = DNF([["a"], ["b"]])
        probs = {"a": 0.5, "b": 0.5}
        assert abs(exact_probability(f, probs) - 0.75) < 1e-12

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        n_vars = rng.randint(2, 7)
        variables = [f"v{i}" for i in range(n_vars)]
        probs = {v: rng.random() for v in variables}
        clauses = [
            rng.sample(variables, rng.randint(1, min(3, n_vars)))
            for _ in range(rng.randint(1, 6))
        ]
        f = DNF(clauses)
        expected = brute_force_probability(f, probs)
        assert abs(exact_probability(f, probs) - expected) < 1e-9

    @pytest.mark.parametrize("components", [False])
    @pytest.mark.parametrize("memo", [False, True])
    def test_ablations_agree(self, components, memo):
        rng = random.Random(99)
        variables = [f"v{i}" for i in range(8)]
        probs = {v: rng.random() for v in variables}
        clauses = [rng.sample(variables, 2) for _ in range(8)]
        f = DNF(clauses)
        full = exact_probability(f, probs)
        ablated = exact_probability(
            f, probs, use_components=components, use_memo=memo
        )
        assert abs(full - ablated) < 1e-9

    def test_evaluator_memo_shared_across_formulas(self):
        probs = {"a": 0.5, "b": 0.5, "c": 0.5}
        ev = ExactEvaluator(probs)
        f1 = DNF([["a", "b"], ["b", "c"]])
        f2 = DNF([["a", "b"], ["b", "c"], ["a", "c"]])
        ev.probability(f1)
        memo_before = len(ev._memo)
        ev.probability(f2)
        assert len(ev._memo) >= memo_before


class TestMonteCarlo:
    def test_converges_to_exact(self):
        rng = random.Random(7)
        variables = [f"v{i}" for i in range(6)]
        probs = {v: rng.random() for v in variables}
        clauses = [rng.sample(variables, 2) for _ in range(5)]
        f = DNF(clauses)
        exact = exact_probability(f, probs)
        estimate = monte_carlo_probability(f, probs, 60_000, seed=1)
        assert abs(estimate - exact) < 0.02

    def test_deterministic_given_seed(self):
        f = DNF([["a", "b"]])
        probs = {"a": 0.5, "b": 0.5}
        e1 = monte_carlo_probability(f, probs, 1000, seed=5)
        e2 = monte_carlo_probability(f, probs, 1000, seed=5)
        assert e1 == e2

    def test_true_and_false_formulas(self):
        assert monte_carlo_probability(DNF([[]]), {}, 10, seed=0) == 1.0
        assert monte_carlo_probability(DNF(), {}, 10, seed=0) == 0.0

    def test_many_shares_worlds(self):
        probs = {"a": 0.5}
        estimates = monte_carlo_many(
            [DNF([["a"]]), DNF([["a"]])], probs, 500, seed=3
        )
        assert estimates[0] == estimates[1]

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            monte_carlo_probability(DNF([["a"]]), {"a": 0.5}, 0)
