"""Tests for cut-set enumeration (MinCuts / MinPCuts)."""

from repro.core import Variable, all_cutsets, is_cutset, min_cutsets, min_p_cutsets, parse_query
from repro.workloads import chain_query

x, y, z, u = (Variable(n) for n in "xyzu")


class TestMinCuts:
    def test_rst(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        cuts = min_cutsets(q)
        assert sorted(cuts, key=sorted) == [frozenset([x]), frozenset([y])]

    def test_disconnected_returns_empty_set(self):
        q = parse_query("q() :- R(x), S(y)")
        assert min_cutsets(q) == [frozenset()]

    def test_single_atom_no_cuts(self):
        q = parse_query("q() :- R(x, y)")
        assert min_cutsets(q) == []

    def test_head_vars_act_as_constants(self):
        # with y in the head, removing x alone disconnects
        q = parse_query("q(y) :- R(x,y), S(y,z)")
        assert min_cutsets(q) == [frozenset()]

    def test_joint_cut_needed(self):
        q = parse_query("q() :- R(x,y), S(x,y)")
        assert min_cutsets(q) == [frozenset([x, y])]

    def test_chain_3(self):
        q = chain_query(3)
        x1, x2 = Variable("x1"), Variable("x2")
        cuts = set(min_cutsets(q))
        assert cuts == {frozenset([x1]), frozenset([x2])}

    def test_minimality(self):
        q = chain_query(4)
        cuts = min_cutsets(q)
        for a in cuts:
            for b in cuts:
                assert not (a < b), "non-minimal cut returned"

    def test_is_cutset_consistency(self):
        q = chain_query(4)
        for cut in all_cutsets(q):
            assert is_cutset(q, cut)


class TestAllCutsets:
    def test_includes_non_minimal(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        cuts = set(all_cutsets(q))
        assert frozenset([x]) in cuts
        assert frozenset([x, y]) in cuts

    def test_empty_included_iff_disconnected(self):
        connected = parse_query("q() :- R(x), S(x)")
        disconnected = parse_query("q() :- R(x), S(y)")
        assert frozenset() not in all_cutsets(connected)
        assert frozenset() in all_cutsets(disconnected)


class TestMinPCuts:
    def test_example_23(self):
        # q :- R(x), S(x,y), Td(y): MinCuts = {{x},{y}}, MinPCuts = {{x}}
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        assert set(min_cutsets(q)) == {frozenset([x]), frozenset([y])}
        assert min_p_cutsets(q, deterministic={"T"}) == [frozenset([x])]

    def test_no_deterministic_equals_mincuts(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        assert min_p_cutsets(q) == min_cutsets(q)
        assert min_p_cutsets(q, deterministic=set()) == min_cutsets(q)

    def test_all_deterministic_but_two(self):
        # only the cut separating the two probabilistic relations counts
        q = parse_query("q() :- R(x), S(x,y), T(y,z), U(z)")
        cuts = min_p_cutsets(q, deterministic={"S", "T"})
        # R and U are probabilistic; any cut separating them qualifies
        for cut in cuts:
            assert is_cutset(q, cut)

    def test_pcut_may_be_larger_than_mincut(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        p_cuts = set(min_p_cutsets(q, deterministic={"T"}))
        assert frozenset([y]) not in p_cuts
