"""Tests for the experiment harnesses (Fig. 2, runtime, quality)."""

import math

import pytest

from repro.experiments import (
    OPTIMIZATION_MODES,
    catalan,
    dissociation_timings,
    fig2_chain_rows,
    fig2_report,
    fig2_star_rows,
    format_seconds,
    format_series,
    format_table,
    fubini,
    per_plan_rankings,
    run_quality_trial,
    run_scaling_trial,
    super_catalan,
    tpch_timings,
)
from repro.workloads import (
    TPCHParameters,
    chain_database,
    chain_query,
    filtered_instance,
    tpch_database,
    tpch_query,
)


class TestClosedForms:
    def test_catalan(self):
        assert [catalan(n) for n in range(8)] == [1, 1, 2, 5, 14, 42, 132, 429]

    def test_super_catalan(self):
        assert [super_catalan(n) for n in range(8)] == [
            1, 1, 3, 11, 45, 197, 903, 4279,
        ]

    def test_fubini(self):
        assert [fubini(n) for n in range(8)] == [
            1, 1, 3, 13, 75, 541, 4683, 47293,
        ]


class TestFig2:
    def test_chain_rows_match_paper(self):
        rows = fig2_chain_rows(max_k=6)
        expected = {
            2: (1, 1, 1),
            3: (2, 3, 4),
            4: (5, 11, 64),
            5: (14, 45, 4096),
            6: (42, 197, 2**20),
        }
        for row in rows:
            assert (
                row.minimal_plans,
                row.total_plans,
                row.dissociations,
            ) == expected[row.k]

    def test_star_rows_match_paper(self):
        rows = fig2_star_rows(max_k=5)
        expected = {
            1: (1, 1, 1),
            2: (2, 3, 4),
            3: (6, 13, 64),
            4: (24, 75, 4096),
            5: (120, 541, 2**20),
        }
        for row in rows:
            assert (
                row.minimal_plans,
                row.total_plans,
                row.dissociations,
            ) == expected[row.k]

    def test_closed_form_used_above_cutoff(self):
        rows = fig2_star_rows(max_k=7, count_plans_up_to=3)
        by_k = {r.k: r for r in rows}
        assert by_k[7].total_plans == 47293
        assert by_k[7].minimal_plans == 5040

    def test_report_renders(self):
        text = fig2_report(fig2_star_rows(3, 3), fig2_chain_rows(4, 4))
        assert "#MP" in text and "k-star" in text and "k-chain" in text


class TestRuntimeHarness:
    def test_dissociation_timings_row(self):
        q = chain_query(3)
        db = chain_database(3, 80, seed=0)
        row = dissociation_timings(q, db, label="chain3")
        assert row.plan_count == 2
        assert set(row.seconds) == {"standard_sql", *OPTIMIZATION_MODES}
        assert all(v >= 0 for v in row.seconds.values())

    def test_tpch_timings_row(self):
        db = filtered_instance(
            tpch_database(scale=0.003, seed=1), TPCHParameters(20, "%")
        )
        row = tpch_timings(tpch_query(), db)
        for key in ("standard_sql", "lineage_query", "diss", "diss_opt3"):
            assert row.seconds[key] >= 0
        assert row.extra["max_lineage"] >= 0

    def test_tpch_skips_exact_above_limit(self):
        db = filtered_instance(
            tpch_database(scale=0.003, seed=1), TPCHParameters(20, "%")
        )
        row = tpch_timings(tpch_query(), db, exact_lineage_limit=0,
                           mc_lineage_limit=0)
        assert math.isnan(row.seconds["exact"])
        assert math.isnan(row.seconds["mc"])


class TestQualityHarness:
    @pytest.fixture(scope="class")
    def trial(self):
        db = filtered_instance(
            tpch_database(scale=0.004, seed=2), TPCHParameters(25, "%re%")
        )
        return run_quality_trial(tpch_query(), db, mc_samples=(50, 1000))

    def test_rankers_present(self, trial):
        assert trial.ground_truth and trial.dissociation
        assert set(trial.monte_carlo) == {50, 1000}

    def test_dissociation_ap_high(self, trial):
        assert trial.ap_dissociation() > 0.85

    def test_more_samples_do_not_hurt_much(self, trial):
        assert trial.ap_monte_carlo(1000) >= trial.ap_monte_carlo(50) - 0.1

    def test_covariates(self, trial):
        assert 0 < trial.avg_pi < 0.5
        assert 0 <= trial.avg_pa <= 1
        assert trial.avg_d >= 1.0
        assert trial.max_lineage >= 1

    def test_per_plan_rankings(self):
        db = filtered_instance(
            tpch_database(scale=0.004, seed=3), TPCHParameters(25, "%")
        )
        rankings = per_plan_rankings(tpch_query(), db)
        assert len(rankings) == 2
        for r in rankings:
            assert r.avg_d >= 1.0
            assert 0 <= r.ap <= 1

    def test_scaling_trial(self):
        db = filtered_instance(
            tpch_database(scale=0.004, seed=4), TPCHParameters(25, "%re%")
        )
        trial = run_scaling_trial(tpch_query(), db, factor=0.1)
        assert 0 <= trial.ap_scaled_gt_vs_gt <= 1
        assert 0 <= trial.ap_scaled_diss_vs_scaled_gt <= 1
        # dissociation works increasingly well at small scales (Prop. 21)
        tiny = run_scaling_trial(tpch_query(), db, factor=0.01)
        assert tiny.ap_scaled_diss_vs_scaled_gt > 0.9


class TestReport:
    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.0205).endswith("ms")
        assert format_seconds(3e-5).endswith("µs")

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_series(self):
        text = format_series("diss", {100: 0.5, 200: 0.25}, unit="s")
        assert text.startswith("diss:")
        assert "100=0.5s" in text
