"""Tests for the oblivious lower bounds (the TODS 2014 companion result).

Soundness target: for every answer, ``low ≤ P(answer) ≤ ρ(answer)``.
"""

import itertools
import random

import pytest

from repro.core import minimal_plans, parse_query
from repro.db import ProbabilisticDatabase
from repro.engine import DissociationEngine
from repro.lineage import (
    DNF,
    dissociated_lineage_by_plan,
    exact_probability,
    lineage_of,
    oblivious_lower_bounds,
    plan_lower_bounds,
    symmetric_lower_probability,
)

from .helpers import random_database_for, random_query


class TestSymmetricMarginal:
    def test_single_copy_identity(self):
        assert symmetric_lower_probability(0.37, 1) == 0.37

    def test_two_copies(self):
        p = symmetric_lower_probability(0.75, 2)
        assert abs((1 - p) ** 2 - 0.25) < 1e-12

    def test_complement_product_invariant(self):
        for p in (0.0, 0.1, 0.5, 0.99):
            for k in (1, 2, 3, 7):
                adjusted = symmetric_lower_probability(p, k)
                assert abs((1 - adjusted) ** k - (1 - p)) < 1e-12

    def test_certain_variable(self):
        assert symmetric_lower_probability(1.0, 5) == 1.0

    def test_rejects_zero_copies(self):
        with pytest.raises(ValueError):
            symmetric_lower_probability(0.5, 0)

    def test_formula_level_bound(self):
        # F = XY ∨ XZ; lower-bound dissociation of X into 2 copies
        p, q, r = 0.6, 0.3, 0.8
        exact = p * q + p * r - p * q * r
        p_adj = symmetric_lower_probability(p, 2)
        lower = 1 - (1 - p_adj * q) * (1 - p_adj * r)
        assert lower <= exact + 1e-12


class TestDissociatedLineage:
    def _setup(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), ((2,), 0.5)])
        db.add_table("S", [((1, 4), 0.5), ((1, 5), 0.5), ((2, 4), 0.5)])
        db.add_table("T", [((4,), 0.5), ((5,), 0.5)])
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        return q, db

    def test_requires_assignments(self):
        q, db = self._setup()
        lineage = lineage_of(q, db)  # no assignments recorded
        (plan, *_) = minimal_plans(q)
        with pytest.raises(ValueError, match="record_assignments"):
            dissociated_lineage_by_plan(lineage, (), plan)

    def test_copy_counting(self):
        q, db = self._setup()
        lineage = lineage_of(q, db, record_assignments=True)
        for plan in minimal_plans(q):
            formula, adjusted = dissociated_lineage_by_plan(lineage, (), plan)
            # same number of clauses, all probabilities within (0, 1]
            assert len(formula) == len(lineage.by_answer[()])
            assert all(0 < p <= 1 for p in adjusted.values())

    def test_dissociated_formula_no_shared_copies_per_clause(self):
        q, db = self._setup()
        lineage = lineage_of(q, db, record_assignments=True)
        for plan in minimal_plans(q):
            formula, _ = dissociated_lineage_by_plan(lineage, (), plan)
            for clause in formula:
                assert len(clause) == 3  # one variable per atom

    def test_upper_variant_recovers_plan_score(self):
        """With unadjusted probabilities the dissociated lineage evaluates
        to the plan's extensional score (Theorem 18 (2))."""
        from repro.engine import plan_scores

        q, db = self._setup()
        lineage = lineage_of(q, db, record_assignments=True)
        for plan in minimal_plans(q):
            formula, _ = dissociated_lineage_by_plan(lineage, (), plan)
            unadjusted = {}
            for clause in formula:
                for v in clause:
                    original = v[0] if isinstance(v[0], tuple) else v
                    unadjusted[v] = lineage.probabilities[original]
            value = exact_probability(formula, unadjusted)
            score = plan_scores(plan, q, db)[()]
            assert abs(value - score) < 1e-9


class TestSoundness:
    def test_example_17_interval(self):
        db = ProbabilisticDatabase()
        half = 0.5
        db.add_table("R", [((1,), half), ((2,), half)])
        db.add_table("S", [((1,), half), ((2,), half)])
        db.add_table("T", [((1, 1), half), ((1, 2), half), ((2, 2), half)])
        db.add_table("U", [((1,), half), ((2,), half)])
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        engine = DissociationEngine(db)
        low, high = engine.probability_bounds(q)[()]
        exact = engine.exact(q)[()]
        assert low <= exact <= high
        assert abs(high - 169 / 2**10) < 1e-12
        assert low > 0.1  # non-trivial lower bound

    def test_random_instances(self):
        checked = 0
        for seed in range(40):
            rng = random.Random(seed)
            q = random_query(rng, max_atoms=3, head_vars=rng.randint(0, 1))
            db = random_database_for(q, rng, domain_size=2)
            engine = DissociationEngine(db)
            exact = engine.exact(q)
            for answer, (low, high) in engine.probability_bounds(q).items():
                checked += 1
                assert low <= exact[answer] + 1e-9, (str(q), answer)
                assert exact[answer] <= high + 1e-9, (str(q), answer)
        assert checked > 30

    def test_safe_queries_tight_intervals(self):
        # safe query: one plan, nothing dissociates → low == high == exact
        rng = random.Random(7)
        q = parse_query("q() :- R(x), S(x,y)")
        db = random_database_for(q, rng)
        engine = DissociationEngine(db)
        exact = engine.exact(q)[()]
        low, high = engine.probability_bounds(q)[()]
        assert abs(low - exact) < 1e-9
        assert abs(high - exact) < 1e-9

    def test_max_over_plans_improves(self):
        rng = random.Random(9)
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        db = random_database_for(q, rng, domain_size=3)
        lineage = lineage_of(q, db, record_assignments=True)
        plans = minimal_plans(q)
        per_plan = [plan_lower_bounds(lineage, p) for p in plans]
        combined = oblivious_lower_bounds(q, lineage, plans)
        for answer in combined:
            assert combined[answer] == max(
                bounds[answer] for bounds in per_plan
            )
