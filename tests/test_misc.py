"""Assorted corner-case tests across modules."""

import random

from repro.api import EngineConfig
from repro.core import DissociationLattice, parse_query
from repro.engine import DissociationEngine
from repro.workloads import like_match

from .helpers import random_database_for


class TestLikeMatchEscaping:
    def test_regex_metacharacters_literal(self):
        assert like_match("%a.b%", "xxa.bxx")
        assert not like_match("%a.b%", "xxaXbxx")

    def test_parentheses_and_brackets(self):
        assert like_match("(x)%", "(x) suffix")
        assert like_match("[y]_", "[y]z")

    def test_star_and_plus_literal(self):
        assert like_match("a*b", "a*b")
        assert not like_match("a*b", "aaab")

    def test_empty_pattern(self):
        assert like_match("", "")
        assert not like_match("", "a")


class TestLatticeUpwardSafety:
    def test_upward_closed_for_simple_query(self):
        # the only dissociation of R(x),S(x,y) above the bottom keeps it
        # safe: upward closedness holds here
        lattice = DissociationLattice(parse_query("q() :- R(x), S(x,y)"))
        assert lattice.upset_is_safe_closed()


class TestEvaluationResultRanking:
    def test_tie_break_is_deterministic(self):
        db = __import__(
            "repro.db", fromlist=["ProbabilisticDatabase"]
        ).ProbabilisticDatabase()
        db.add_table("R", [((1, 5), 0.5), ((2, 6), 0.5), ((3, 7), 0.25)])
        q = parse_query("q(x) :- R(x, y)")
        engine = DissociationEngine(db)
        first = engine.evaluate(q).ranking()
        second = engine.evaluate(q).ranking()
        assert first == second
        assert first[-1] == (3,)


class TestScorePerPlanSemijoin:
    def test_semijoin_variant_matches(self):
        rng = random.Random(3)
        q = parse_query("q(z) :- R(z,x), S(x,y), T(y)")
        db = random_database_for(q, rng, domain_size=3, fill=0.5)
        engine = DissociationEngine(db)
        plain = engine.score_per_plan(q, semijoin=False)
        reduced = engine.score_per_plan(q, semijoin=True)
        assert len(plain) == len(reduced)
        for plan, scores in plain.items():
            assert scores == reduced[plan] or all(
                abs(scores[a] - reduced[plan][a]) < 1e-9 for a in scores
            )


class TestDatabaseRepr:
    def test_reprs_do_not_crash(self):
        from repro.db import ProbabilisticDatabase

        db = ProbabilisticDatabase()
        table = db.add_table("R", [((1,), 0.5)])
        assert "R" in repr(db)
        assert "R" in repr(table)
        assert "Schema" in repr(db.schema)

    def test_query_plan_reprs(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        from repro.core import minimal_plans

        for plan in minimal_plans(q):
            assert "π" in repr(plan)
            assert "R(x)" in str(plan)


class TestBackendDataTypes:
    def test_mixed_type_columns(self):
        # SQLite stores values dynamically; mixed int/str columns must
        # round-trip through both backends identically
        from repro.db import ProbabilisticDatabase

        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), (("1",), 0.25)])
        db.add_table("S", [((1, "a"), 0.5), (("1", "b"), 0.5)])
        q = parse_query("q(y) :- R(x), S(x, y)")
        memory = DissociationEngine(db).propagation_score(q)
        sqlite = DissociationEngine(db, EngineConfig(backend="sqlite")).propagation_score(q)
        assert set(memory) == set(sqlite) == {("a",), ("b",)}
