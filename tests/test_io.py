"""Tests for CSV import/export of probabilistic databases."""

import random

import pytest

from repro.db import (
    ProbabilisticDatabase,
    load_database,
    load_table_csv,
    save_database,
    save_table_csv,
)


@pytest.fixture
def sample_db():
    db = ProbabilisticDatabase()
    db.add_table(
        "R",
        [((1, "alpha"), 0.25), ((2, "beta"), 0.75)],
        columns=("id", "label"),
    )
    db.add_table("D", [(10,), (20,)], deterministic=True, columns=("v",))
    return db


class TestRoundTrip:
    def test_save_and_load(self, sample_db, tmp_path):
        save_database(sample_db, tmp_path)
        loaded = load_database(tmp_path, deterministic={"D"})
        assert loaded.table("R").rows == sample_db.table("R").rows
        assert loaded.table("D").rows == sample_db.table("D").rows
        assert loaded.table("D").schema.deterministic

    def test_column_names_preserved(self, sample_db, tmp_path):
        save_database(sample_db, tmp_path)
        loaded = load_database(tmp_path, deterministic={"D"})
        assert loaded.table("R").schema.columns == ("id", "label")

    def test_probabilities_exact(self, tmp_path):
        rng = random.Random(0)
        db = ProbabilisticDatabase()
        db.add_table("X", [((i,), rng.random()) for i in range(50)])
        save_database(db, tmp_path)
        loaded = load_database(tmp_path)
        for row, p in db.table("X"):
            assert loaded.table("X").probability(row) == p

    def test_selected_tables_only(self, sample_db, tmp_path):
        save_database(sample_db, tmp_path, tables=["R"])
        assert (tmp_path / "R.csv").exists()
        assert not (tmp_path / "D.csv").exists()


class TestLoading:
    def test_type_coercion(self, tmp_path):
        path = tmp_path / "T.csv"
        path.write_text("a,b,p\n1,x,0.5\n2.5,y,0.25\n")
        db = ProbabilisticDatabase()
        load_table_csv(db, "T", path)
        assert (1, "x") in db.table("T")
        assert (2.5, "y") in db.table("T")

    def test_no_probability_column(self, tmp_path):
        path = tmp_path / "T.csv"
        path.write_text("a\n1\n2\n")
        db = ProbabilisticDatabase()
        load_table_csv(db, "T", path)
        assert db.table("T").probability((1,)) == 1.0

    def test_deterministic_flag(self, tmp_path):
        path = tmp_path / "T.csv"
        path.write_text("a\n1\n")
        db = ProbabilisticDatabase()
        load_table_csv(db, "T", path, deterministic=True)
        assert db.table("T").schema.deterministic

    def test_field_count_mismatch(self, tmp_path):
        path = tmp_path / "T.csv"
        path.write_text("a,p\n1,0.5,extra\n")
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError, match="expected 2 fields"):
            load_table_csv(db, "T", path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "T.csv"
        path.write_text("")
        db = ProbabilisticDatabase()
        with pytest.raises(ValueError, match="empty"):
            load_table_csv(db, "T", path)

    def test_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_database(tmp_path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "T.csv"
        path.write_text("a,p\n1,0.5\n\n2,0.25\n")
        db = ProbabilisticDatabase()
        load_table_csv(db, "T", path)
        assert len(db.table("T")) == 2


class TestEndToEnd:
    def test_query_over_loaded_database(self, tmp_path):
        (tmp_path / "R.csv").write_text("x,p\n1,0.5\n2,0.5\n")
        (tmp_path / "S.csv").write_text("x,y,p\n1,4,0.5\n1,5,0.5\n")
        db = load_database(tmp_path)
        from repro import DissociationEngine, parse_query

        q = parse_query("q() :- R(x), S(x,y)")
        engine = DissociationEngine(db)
        rho = engine.propagation_score(q)[()]
        exact = engine.exact(q)[()]
        assert abs(rho - exact) < 1e-9  # safe query: exact
