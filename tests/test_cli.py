"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestDemo:
    def test_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "rho" in out and "exact" in out
        assert "0.1650390625" in out
        assert "0.1621093750" in out


class TestFig2:
    def test_prints_table(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "#MP" in out
        assert "132" in out  # 7-chain minimal plans


class TestPlans:
    def test_unsafe_query(self, capsys):
        assert main(["plans", "q() :- R(x), S(x,y), T(y)"]) == 0
        out = capsys.readouterr().out
        assert "2 minimal plans" in out
        assert "π" in out

    def test_safe_query(self, capsys):
        assert main(["plans", "q() :- R(x), S(x,y)"]) == 0
        out = capsys.readouterr().out
        assert "safe" in out

    def test_deterministic_knowledge(self, capsys):
        assert main(
            ["plans", "q() :- R(x), S(x,y), T(y)", "--deterministic", "T"]
        ) == 0
        out = capsys.readouterr().out
        assert "safe" in out

    def test_parse_error_raises(self):
        with pytest.raises(Exception):
            main(["plans", "not a query"])


class TestEvaluate:
    @pytest.fixture
    def data_dir(self, tmp_path):
        (tmp_path / "R.csv").write_text("x,p\n1,0.5\n2,0.5\n")
        (tmp_path / "S.csv").write_text("x,y,p\n1,4,0.5\n1,5,0.5\n2,4,0.5\n")
        (tmp_path / "T.csv").write_text("y,p\n4,0.5\n5,0.5\n")
        return tmp_path

    def test_evaluate_with_exact(self, capsys, data_dir):
        assert main(
            ["evaluate", "q() :- R(x), S(x,y), T(y)", "--data", str(data_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "rho=" in out and "exact=" in out

    def test_evaluate_sqlite_backend(self, capsys, data_dir):
        assert main(
            [
                "evaluate",
                "q() :- R(x), S(x,y), T(y)",
                "--data",
                str(data_dir),
                "--sqlite",
            ]
        ) == 0
        assert "rho=" in capsys.readouterr().out

    def test_exact_limit_zero_skips_exact(self, capsys, data_dir):
        assert main(
            [
                "evaluate",
                "q() :- R(x), S(x,y), T(y)",
                "--data",
                str(data_dir),
                "--exact-limit",
                "0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "rho=" in out and "exact=" not in out

    def test_non_boolean_query(self, capsys, data_dir):
        assert main(
            ["evaluate", "q(x) :- R(x), S(x,y)", "--data", str(data_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 answers" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])
