"""Fault-tolerance tests: supervision, isolation, deadlines, chaos.

The guarantees pinned down here:

* every failure a caller can observe is **typed** — ``ServiceClosed``,
  ``RequestTimeout``, ``WorkerCrashed`` — and every submitted future
  *resolves* (result or typed exception): no caller is ever left
  blocked on a future nobody will deliver;
* a crashed worker's in-flight batch migrates to a healthy worker
  (innocent requests still get bit-identical results), the thread is
  replaced within the restart budget, and :meth:`health` accounts for
  every crash/restart exactly;
* one poison query has a blast radius of exactly one future;
* transient SQLite contention retries deterministically, permanent
  errors never retry;
* a mutation function that raises releases the quiescence barrier and
  either rolls back bit-identically (tracked writes — epochs untouched,
  caches warm) or taints every epoch (untracked writes), so caches can
  never serve half-applied state as the pre-mutation epoch. The deeper
  transactional/durability guarantees live in ``test_txn_recovery.py``.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from concurrent.futures import Future

import pytest

from repro import connect
from repro.api import EngineConfig, ServiceConfig
from repro.core.parser import parse_query
from repro.engine import DissociationEngine, Optimizations
from repro.service import (
    Deadline,
    DissociationService,
    FaultInjector,
    MicroBatcher,
    QueryRequest,
    RequestTimeout,
    RetryPolicy,
    ServiceClosed,
    WorkerCrashed,
    is_transient_error,
)
from repro.workloads import chain_database, chain_query


def locked_error() -> sqlite3.OperationalError:
    return sqlite3.OperationalError("database is locked")


def make_request(query=None) -> QueryRequest:
    return QueryRequest(
        query=query or parse_query("q() :- R1(x, y)"),
        optimizations=Optimizations(),
        future=Future(),
    )


# ----------------------------------------------------------------------
# RetryPolicy / Deadline / error taxonomy
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_transient_classification(self):
        assert is_transient_error(locked_error())
        assert is_transient_error(sqlite3.OperationalError("database is busy"))
        assert not is_transient_error(sqlite3.OperationalError("no such table: R"))
        assert not is_transient_error(sqlite3.ProgrammingError("bad SQL"))
        assert not is_transient_error(KeyError("no table named R"))

    def test_typed_errors_keep_legacy_bases(self):
        # existing `except RuntimeError` / `except TimeoutError` handlers
        # must keep catching the new typed errors
        assert issubclass(ServiceClosed, RuntimeError)
        assert issubclass(WorkerCrashed, RuntimeError)
        assert issubclass(RequestTimeout, TimeoutError)


class TestRetryPolicy:
    def test_schedule_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=5, backoff=0.01, max_backoff=0.05)
        assert policy.schedule() == [0.01, 0.02, 0.04, 0.05, 0.05]
        assert policy.schedule() == policy.schedule()

    def test_retries_transient_then_succeeds(self):
        policy = RetryPolicy(max_retries=3, backoff=0.01)
        sleeps: list[float] = []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise locked_error()
            return "ok"

        assert policy.run(flaky, sleep=sleeps.append) == "ok"
        assert attempts["n"] == 3
        assert sleeps == [0.01, 0.02]

    def test_permanent_error_never_retries(self):
        policy = RetryPolicy(max_retries=3)
        attempts = {"n": 0}

        def broken():
            attempts["n"] += 1
            raise KeyError("no table named R")

        with pytest.raises(KeyError):
            policy.run(broken, sleep=lambda _: None)
        assert attempts["n"] == 1

    def test_budget_exhaustion_raises_last_error(self):
        policy = RetryPolicy(max_retries=2, backoff=0.0)
        attempts = {"n": 0}

        def always_locked():
            attempts["n"] += 1
            raise locked_error()

        with pytest.raises(sqlite3.OperationalError):
            policy.run(always_locked, sleep=lambda _: None)
        assert attempts["n"] == 3  # 1 try + 2 retries

    def test_expired_deadline_stops_retrying(self):
        policy = RetryPolicy(max_retries=10, backoff=0.0)
        expired = Deadline(expires_at=time.monotonic() - 1.0, timeout=0.001)
        attempts = {"n": 0}

        def always_locked():
            attempts["n"] += 1
            raise locked_error()

        with pytest.raises(sqlite3.OperationalError):
            policy.run(always_locked, deadline=expired, sleep=lambda _: None)
        assert attempts["n"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)


class TestDeadline:
    def test_after_and_expiry(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert 0.0 < deadline.remaining() <= 60.0
        past = Deadline(expires_at=time.monotonic() - 0.1, timeout=0.1)
        assert past.expired
        assert past.remaining() < 0


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_on_call_fires_only_on_nth_call(self):
        faults = FaultInjector()
        faults.on_call("worker", 2, RuntimeError)
        faults.fire("worker")
        with pytest.raises(RuntimeError):
            faults.fire("worker")
        faults.fire("worker")
        assert faults.calls("worker") == 3
        assert faults.stats()["fired"] == {"worker": 1}

    def test_predicate_and_times_budget(self):
        faults = FaultInjector()
        faults.when("evaluate", lambda c: c == "poison", KeyError, times=2)
        faults.fire("evaluate", "fine")
        with pytest.raises(KeyError):
            faults.fire("evaluate", "poison")
        with pytest.raises(KeyError):
            faults.fire("evaluate", "poison")
        faults.fire("evaluate", "poison")  # budget exhausted
        assert faults.stats() == {
            "calls": {"evaluate": 4},
            "fired": {"evaluate": 2},
        }

    def test_action_without_exception(self):
        faults = FaultInjector()
        seen: list[object] = []
        faults.always("statement", action=seen.append, times=1)
        faults.fire("statement", "SELECT 1")
        faults.fire("statement", "SELECT 2")
        assert seen == ["SELECT 1"]

    def test_exception_instance_raised_verbatim(self):
        faults = FaultInjector()
        exc = locked_error()
        faults.on_call("statement", 1, exc)
        with pytest.raises(sqlite3.OperationalError) as info:
            faults.fire("statement")
        assert info.value is exc


# ----------------------------------------------------------------------
# MicroBatcher: typed close, drain, and the worker-race path
# ----------------------------------------------------------------------
class TestBatcherResilience:
    def test_submit_after_close_raises_typed(self):
        batcher = MicroBatcher()
        batcher.close()
        with pytest.raises(ServiceClosed):
            batcher.submit(make_request())

    def test_drain_returns_and_clears_pending(self):
        batcher = MicroBatcher(max_batch_delay=0.0)
        requests = [make_request() for _ in range(3)]
        for request in requests:
            batcher.submit(request)
        assert batcher.drain() == requests
        assert len(batcher) == 0
        assert batcher.drain() == []

    def test_next_batch_worker_race_loops_instead_of_returning_empty(self):
        """The 'lost the race' path (next_batch): a worker whose group
        was drained by a concurrent worker during the grace wait must
        keep waiting, not return ``[]`` (which would read as shutdown).

        The race is reproduced white-box: while the worker grace-waits
        on the first request, the test steals the pending list (playing
        the concurrent winner) and wakes it with nothing left to take.
        """
        batcher = MicroBatcher(max_batch_size=4, max_batch_delay=0.5)
        got: list[list[QueryRequest]] = []
        worker = threading.Thread(
            target=lambda: got.append(batcher.next_batch(timeout=10.0))
        )
        worker.start()
        first = make_request()
        batcher.submit(first)
        time.sleep(0.1)  # worker is now inside the grace wait
        with batcher._lock:
            stolen = list(batcher._pending)
            batcher._pending.clear()
            batcher._not_empty.notify_all()
        assert stolen == [first]
        second = make_request()
        batcher.submit(second)
        worker.join(10.0)
        assert not worker.is_alive()
        assert got == [[second]]


# ----------------------------------------------------------------------
# service-level supervision
# ----------------------------------------------------------------------
def small_world():
    db = chain_database(4, 20, seed=1, p_max=0.5)
    return db, chain_query(4)


class TestWorkerSupervision:
    def test_submit_on_closed_service_raises_service_closed(self):
        db, q = small_world()
        service = DissociationService(db)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(q)

    def test_worker_crash_restarts_and_results_are_identical(self):
        db, q = small_world()
        baseline = DissociationEngine(db).evaluate(q).scores

        faults = FaultInjector()
        faults.on_call("worker", 1, RuntimeError("chaos: worker killed"))
        with DissociationService(
            db, faults=faults, service=ServiceConfig(workers=1)
        ) as service:
            result = service.evaluate(q)
            assert result.scores == baseline  # requeued, served by the
            # restarted worker, bit-identical
            health = service.health()
            assert health["worker_crashes"] == 1
            assert health["worker_restarts"] == 1
            assert health["live_workers"] == 1
            assert not health["failed"]
            assert "chaos" in health["last_worker_error"]
            stats = service.stats()
            assert stats["worker_restarts"] == 1
            assert stats["worker_crashes"] == 1

    def test_session_construction_crash_is_supervised(self):
        db, q = small_world()
        faults = FaultInjector()
        faults.on_call("session", 1, RuntimeError("cannot build session"))
        with DissociationService(
            db,
            EngineConfig(backend="sqlite"),
            ServiceConfig(workers=1),
            faults=faults,
        ) as service:
            result = service.evaluate(q)
            assert result.scores
            assert service.health()["worker_restarts"] == 1

    def test_restart_budget_exhaustion_fails_pool(self):
        db, q = small_world()
        faults = FaultInjector()
        faults.always("worker", RuntimeError("always crashing"))
        service = DissociationService(
            db,
            faults=faults,
            service=ServiceConfig(workers=1, max_worker_restarts=2),
        )
        try:
            futures = [service.submit(q) for _ in range(4)]
            failures = []
            for future in futures:
                with pytest.raises(WorkerCrashed):
                    future.result(timeout=30.0)
                failures.append(future.exception())
            health = service.health()
            assert health["failed"]
            assert health["live_workers"] == 0
            assert health["worker_restarts"] == 2  # budget, fully spent
            assert health["worker_crashes"] == 3  # original + 2 restarts
            with pytest.raises(WorkerCrashed):
                service.submit(q)
        finally:
            service.close()

    def test_close_reports_wedged_worker_and_fails_its_futures(self):
        db, q = small_world()
        release = threading.Event()
        faults = FaultInjector()
        faults.on_call("worker", 1, action=lambda _batch: release.wait(30.0))
        service = DissociationService(
            db, faults=faults, service=ServiceConfig(workers=1)
        )
        wedged_future = service.submit(q)
        queued_future = None
        try:
            time.sleep(0.2)  # the worker is now wedged inside the hook
            queued_future = service.submit(q)
            started = time.monotonic()
            service.close(timeout=0.5)
            assert time.monotonic() - started < 5.0
            health = service.health()
            assert health["wedged"] == ["dissoc-worker-0"]
            with pytest.raises(ServiceClosed):
                wedged_future.result(timeout=1.0)
            with pytest.raises(ServiceClosed):
                queued_future.result(timeout=1.0)
        finally:
            release.set()  # let the wedged thread exit cleanly
            service.close(timeout=5.0)

    def test_close_releases_mutation_quiesce_barrier(self):
        """close() during an in-flight mutate() quiesce must wake the
        mutator (with ServiceClosed) instead of leaving it blocked on a
        condition nobody will ever signal again."""
        db, q = small_world()
        release = threading.Event()
        faults = FaultInjector()
        # the "evaluate" hook fires *inside* the batch — _active_batches
        # is held, so a concurrent mutate() blocks in its quiesce wait
        faults.on_call("evaluate", 1, action=lambda _q: release.wait(30.0))
        service = DissociationService(
            db, faults=faults, service=ServiceConfig(workers=1)
        )
        wedged_future = service.submit(q)
        mutator_error: list[BaseException] = []

        def mutator():
            try:
                service.mutate(lambda _db: None)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                mutator_error.append(exc)

        mutator_thread = threading.Thread(target=mutator)
        try:
            time.sleep(0.2)  # the worker is wedged inside the batch
            mutator_thread.start()
            time.sleep(0.2)  # the mutator is now waiting for quiescence
            assert mutator_thread.is_alive()
            started = time.monotonic()
            service.close(timeout=0.5)
            mutator_thread.join(timeout=5.0)
            assert time.monotonic() - started < 5.0
            assert not mutator_thread.is_alive(), (
                "mutate() stayed blocked on the quiesce barrier after "
                "close()"
            )
            assert mutator_error and isinstance(
                mutator_error[0], ServiceClosed
            )
            with pytest.raises(ServiceClosed):
                wedged_future.result(timeout=1.0)
        finally:
            release.set()
            mutator_thread.join(timeout=5.0)
            service.close(timeout=5.0)


# ----------------------------------------------------------------------
# poison-query isolation
# ----------------------------------------------------------------------
class TestPoisonIsolation:
    def test_blast_radius_is_one(self):
        db, q = small_world()
        innocents = [
            parse_query("q() :- R1(x, y)"),
            parse_query("q() :- R2(x, y), R3(y, z)"),
        ]
        engine = DissociationEngine(db)
        baselines = [engine.evaluate(iq).scores for iq in innocents]

        faults = FaultInjector()
        faults.when("evaluate", lambda c: c == q, KeyError)
        with DissociationService(
            db,
            faults=faults,
            # one worker + a long coalescing window force one batch
            service=ServiceConfig(workers=1, max_batch_delay=0.1),
        ) as service:
            poisoned = service.submit(q)
            innocent_futures = [service.submit(iq) for iq in innocents]
            with pytest.raises(KeyError):
                poisoned.result(timeout=30.0)
            for future, baseline in zip(innocent_futures, baselines):
                assert future.result(timeout=30.0).scores == baseline
            stats = service.stats()
            assert stats["poison_queries"] == 1
            assert stats["batch_retries"] >= 1
            assert stats["worker_crashes"] == 0  # a poison query must
            # never take the worker thread down

    def test_transient_contention_is_retried_to_success(self):
        db, q = small_world()
        baseline = DissociationEngine(db).evaluate(q).scores
        faults = FaultInjector()
        # two transient firings: one fails the batch, one fails the
        # first individual attempt; the policy's retry then succeeds
        faults.when("evaluate", lambda c: c == q, locked_error(), times=2)
        with DissociationService(
            db,
            faults=faults,
            service=ServiceConfig(workers=1, retry_backoff=0.0),
        ) as service:
            assert service.evaluate(q).scores == baseline
            stats = service.stats()
            assert stats["poison_queries"] == 0
            assert stats["batch_retries"] == 1

    def test_single_member_batch_permanent_error_delivered_directly(self):
        db, q = small_world()
        faults = FaultInjector()
        faults.when("evaluate", lambda c: c == q, KeyError)
        with DissociationService(
            db,
            faults=faults,
            service=ServiceConfig(workers=1, max_batch_delay=0.0),
        ) as service:
            with pytest.raises(KeyError):
                service.submit(q).result(timeout=30.0)
            stats = service.stats()
            assert stats["poison_queries"] == 1


# ----------------------------------------------------------------------
# deadlines and gather
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_queue_expired_request_fails_fast_with_request_timeout(self):
        db, q = small_world()
        release = threading.Event()
        faults = FaultInjector()
        # wedge the only worker on its first batch so the second request
        # expires while queued
        faults.on_call("worker", 1, action=lambda _batch: release.wait(30.0))
        with DissociationService(
            db, faults=faults, service=ServiceConfig(workers=1)
        ) as service:
            blocker = service.submit(q)
            time.sleep(0.2)  # ensure the worker took the first batch
            doomed = service.submit(q, timeout=0.05)
            time.sleep(0.2)  # let the deadline expire while queued
            release.set()
            with pytest.raises(RequestTimeout):
                doomed.result(timeout=30.0)
            assert blocker.result(timeout=30.0).scores
            assert service.stats()["timeouts"] == 1

    def test_default_timeout_comes_from_service_config(self):
        db, q = small_world()
        release = threading.Event()
        faults = FaultInjector()
        faults.on_call("worker", 1, action=lambda _batch: release.wait(30.0))
        with DissociationService(
            db,
            faults=faults,
            service=ServiceConfig(workers=1, default_timeout=0.05),
        ) as service:
            blocker = service.submit(q, timeout=None)  # explicit opt-out
            time.sleep(0.2)
            doomed = service.submit(q)  # inherits default_timeout
            time.sleep(0.2)
            release.set()
            with pytest.raises(RequestTimeout):
                doomed.result(timeout=30.0)
            assert blocker.result(timeout=30.0).scores

    def test_invalid_timeout_rejected(self):
        db, q = small_world()
        with DissociationService(db) as service:
            with pytest.raises(ValueError):
                service.submit(q, timeout=0.0)
            with pytest.raises(ValueError):
                service.submit(q, timeout=-1.0)

    def test_gather_timeout_is_one_overall_deadline(self):
        db, q = small_world()
        release = threading.Event()
        faults = FaultInjector()
        faults.on_call("worker", 1, action=lambda _batch: release.wait(30.0))
        service = DissociationService(
            db, faults=faults, service=ServiceConfig(workers=1)
        )
        try:
            futures = [service.submit(q) for _ in range(5)]
            started = time.monotonic()
            with pytest.raises(TimeoutError):
                service.gather(futures, timeout=0.3)
            elapsed = time.monotonic() - started
            # pre-fix behaviour: each future restarts the clock, so five
            # stuck futures could wait 5 x 0.3s; one shared deadline
            # must stay close to 0.3s total
            assert elapsed < 1.0
        finally:
            release.set()
            service.close()


# ----------------------------------------------------------------------
# mutation failure semantics
# ----------------------------------------------------------------------
class TestMutationFailure:
    @staticmethod
    def _raise_without_writing(db):
        # writes nothing: any epoch movement observed by the test can
        # only come from the touch-on-failure semantics
        raise ValueError("mutation failed before writing")

    @staticmethod
    def _half_apply_then_raise(db):
        db.table("R1").insert((999_991, 999_992), 0.5)
        raise ValueError("mutation failed midway")

    def test_failed_mutation_releases_barrier_and_rolls_back(self):
        db, q = small_world()
        with DissociationService(db) as service:
            before = db.version
            epochs_before = db.table_epochs()
            with pytest.raises(ValueError):
                service.mutate(self._raise_without_writing)
            # fn wrote nothing through the tracked API, so the undo
            # log certifies a clean rollback: *no* epoch moves — the
            # pre-mutation state is exactly what readers still see
            assert db.version == before
            assert db.table_epochs() == epochs_before
            assert db.last_mutation.rolled_back
            # the barrier is released: queries and later mutations work
            assert service.evaluate(q).scores
            service.mutate(lambda d: None)
            stats = service.stats()
            assert stats["rolled_back_mutations"] == 1
            assert stats["tainted_mutations"] == 0
            assert stats["mutations"] == 2

    def test_serial_session_failed_mutation_keeps_cache_warm(self):
        db, q = small_world()
        with connect(db) as session:
            first = session.evaluate(q)
            before = db.version
            with pytest.raises(ValueError):
                session.mutate(self._raise_without_writing)
            assert db.version == before
            again = session.evaluate(q)
            # the rollback restored the pre-mutation epoch, so the
            # cached result is still valid and still served
            assert again.cached and again.epoch == first.epoch
            assert session.results.stats()["evictions"] == 0

    def test_tracked_failed_mutation_rolls_back_writes(self):
        db, q = small_world()
        with DissociationService(db) as service:
            rows_before = {t.name: dict(t.rows) for t in db}
            epochs_before = db.table_epochs()

            def tracked_half_apply(d):
                d.insert("R1", (999_991, 999_992), 0.5)
                raise ValueError("mutation failed midway")

            with pytest.raises(ValueError):
                service.mutate(tracked_half_apply)
            # bit-identical restore: rows AND epochs
            assert {t.name: dict(t.rows) for t in db} == rows_before
            assert db.table_epochs() == epochs_before
            assert service.stats()["rolled_back_mutations"] == 1

    def test_failed_mutation_taints_untouched_tables(self):
        # _half_apply_then_raise writes R1 *around* the tracked API
        # (straight into the Table), so the rollback cannot be
        # certified and the failure must taint *all* tables: the
        # caches cannot know what else the failed function touched
        # through untracked paths
        db, q = small_world()
        with DissociationService(db) as service:
            untouched = {
                name: db.table_epoch(name)
                for name in db.table_names
                if name != "R1"
            }
            with pytest.raises(ValueError):
                service.mutate(self._half_apply_then_raise)
            for name, old in untouched.items():
                assert db.table_epoch(name) != old, name
            assert db.last_mutation.tainted
            assert service.stats()["tainted_mutations"] == 1
            # evaluation over the half-applied state works and carries
            # the tainted epochs
            assert service.evaluate(q).epoch == db.epoch_vector(q.relations)

    def test_concurrent_mutators_do_not_deadlock_after_failure(self):
        db, q = small_world()
        with DissociationService(db) as service:
            with pytest.raises(ValueError):
                service.mutate(self._half_apply_then_raise)
            # results over the half-applied state carry the new epoch
            assert service.evaluate(q).epoch == db.epoch_vector(q.relations)
            done = threading.Event()

            def second_mutator():
                service.mutate(lambda d: None)
                done.set()

            thread = threading.Thread(target=second_mutator)
            thread.start()
            thread.join(10.0)
            assert done.is_set(), "mutation barrier was not released"


class TestTouch:
    def test_touch_bumps_version_without_changing_data(self):
        db, _ = small_world()
        rows_before = {t.name: dict(t.rows) for t in db}
        before = db.version
        epochs_before = db.table_epochs()
        db.touch()
        assert db.version != before
        # touch taints every table's epoch, so per-table-keyed caches
        # (stats, encodings, results) all see a fresh epoch
        for name, old in epochs_before.items():
            assert db.table_epoch(name) != old, name
        assert {t.name: dict(t.rows) for t in db} == rows_before


# ----------------------------------------------------------------------
# the chaos acceptance test
# ----------------------------------------------------------------------
class PoisonPill(Exception):
    pass


class TestChaos:
    def test_chain7_zipf_mix_under_worker_kill_and_poison(self):
        """The PR's acceptance scenario: chain-7 Zipf traffic with a
        worker killed mid-run and ~1-in-20 requests poisoned. Every
        future must resolve (zero hangs), non-poisoned results must be
        bit-identical to a fault-free run, and the counters must
        account for the injected faults exactly.
        """
        k = 7
        db = chain_database(k, 40, seed=11, p_max=0.5)
        full = chain_query(k)
        mix = [
            full,
            parse_query("q() :- R1(x, y), R2(y, z)"),
            parse_query("q() :- R3(x, y), R4(y, z), R5(z, w)"),
            parse_query("q() :- R2(x, y), R3(y, z)"),
            parse_query("q() :- R6(x, y), R7(y, z)"),
        ]
        poison = parse_query("q() :- R4(x, y), R5(y, z)")

        # Zipf-ish skew over the mix with the poison query appearing at
        # roughly 1-in-20 — deterministic, no RNG needed
        requests = []
        for i in range(120):
            requests.append(poison if i % 20 == 7 else mix[i % len(mix)])
        n_poison = sum(1 for r in requests if r == poison)
        assert n_poison == 6

        engine = DissociationEngine(db)
        baselines = {q: engine.evaluate(q).scores for q in mix}

        faults = FaultInjector()
        faults.on_call("worker", 5, RuntimeError("chaos: worker killed"))
        faults.when("evaluate", lambda c: c == poison, PoisonPill)

        with DissociationService(
            db,
            faults=faults,
            service=ServiceConfig(workers=2, max_batch_delay=0.005),
        ) as service:
            futures = [
                (query, service.submit(query, timeout=60.0))
                for query in requests
            ]
            poisoned_failures = 0
            deadline = Deadline.after(120.0)
            for query, future in futures:
                # zero hangs: every future must resolve (result or
                # typed exception) within the overall deadline
                budget = max(deadline.remaining(), 0.1)
                if query == poison:
                    with pytest.raises(PoisonPill):
                        future.result(timeout=budget)
                    poisoned_failures += 1
                else:
                    result = future.result(timeout=budget)
                    assert result.scores == baselines[query], (
                        "non-poisoned result diverged from fault-free run"
                    )
            assert not deadline.expired, "futures did not resolve in time"
            assert poisoned_failures == n_poison

            stats = service.stats()
            health = service.health()
            assert stats["poison_queries"] == n_poison
            assert health["worker_crashes"] == 1
            assert health["worker_restarts"] == 1
            assert health["live_workers"] == 2
            assert not health["failed"]
            assert stats["worker_restarts"] == 1
            # the injector itself confirms the scripted faults all fired
            fired = faults.stats()["fired"]
            assert fired["worker"] == 1
            assert fired["evaluate"] >= n_poison
