"""Tests for functional dependencies and the ∆Γ chase."""

import pytest

from repro.core import (
    FD,
    Atom,
    ColumnFD,
    Constant,
    Variable,
    closure,
    dissociation_closure,
    parse_query,
)
from repro.core.fds import apply_dissociation_closure, instantiate_column_fds

x, y, z, u = (Variable(n) for n in "xyzu")


class TestClosure:
    def test_reflexive(self):
        assert closure([x], []) == {x}

    def test_single_step(self):
        assert closure([x], [FD(frozenset([x]), frozenset([y]))]) == {x, y}

    def test_transitive(self):
        fds = [
            FD(frozenset([x]), frozenset([y])),
            FD(frozenset([y]), frozenset([z])),
        ]
        assert closure([x], fds) == {x, y, z}

    def test_composite_lhs(self):
        fds = [FD(frozenset([x, y]), frozenset([z]))]
        assert closure([x], fds) == {x}
        assert closure([x, y], fds) == {x, y, z}

    def test_no_spurious(self):
        fds = [FD(frozenset([y]), frozenset([z]))]
        assert closure([x], fds) == {x}


class TestInstantiation:
    def test_basic_key(self):
        atom = Atom("S", (x, y))
        fds = instantiate_column_fds(atom, [ColumnFD((0,), (1,))])
        assert fds == [FD(frozenset([x]), frozenset([y]))]

    def test_constant_lhs_dropped(self):
        atom = Atom("S", (Constant(1), y))
        fds = instantiate_column_fds(atom, [ColumnFD((0,), (1,))])
        # the constant is fixed, so y is determined by the empty set
        assert fds == [FD(frozenset(), frozenset([y]))]

    def test_constant_rhs_skipped(self):
        atom = Atom("S", (x, Constant(1)))
        assert instantiate_column_fds(atom, [ColumnFD((0,), (1,))]) == []

    def test_repeated_variable(self):
        atom = Atom("S", (x, x))
        assert instantiate_column_fds(atom, [ColumnFD((0,), (1,))]) == []

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            instantiate_column_fds(Atom("S", (x,)), [ColumnFD((0,), (5,))])


class TestDissociationClosure:
    def test_rst_example(self):
        # S: x→y dissociates R(x) on y (Sec. 3.3.2)
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        delta = dissociation_closure(q, {"S": [ColumnFD((0,), (1,))]})
        assert delta == {"R": frozenset([y])}

    def test_reverse_fd(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        delta = dissociation_closure(q, {"S": [ColumnFD((1,), (0,))]})
        assert delta == {"T": frozenset([x])}

    def test_head_variables_excluded(self):
        q = parse_query("q(y) :- R(x), S(x,y), T(y)")
        delta = dissociation_closure(q, {"S": [ColumnFD((0,), (1,))]})
        assert delta == {}

    def test_propagation_through_atoms(self):
        # R1: x→y and R2: y→z dissociate R1 on z transitively
        q = parse_query("q() :- R1(x,y), R2(y,z), R3(z)")
        fds = {"R1": [ColumnFD((0,), (1,))], "R2": [ColumnFD((0,), (1,))]}
        delta = dissociation_closure(q, fds)
        assert delta["R1"] == frozenset([z])
        assert delta["R2"] == frozenset()  if "R2" in delta else True

    def test_apply_makes_hierarchical(self):
        from repro.core import is_hierarchical

        q = parse_query("q() :- R(x), S(x,y), T(y)")
        assert not is_hierarchical(q)
        chased = apply_dissociation_closure(q, {"S": [ColumnFD((0,), (1,))]})
        assert is_hierarchical(chased)

    def test_no_fds_identity(self):
        q = parse_query("q() :- R(x), S(x,y)")
        assert apply_dissociation_closure(q, {}) == q


class TestTableSchemaKeyHelper:
    def test_key_builds_column_fd(self):
        from repro.db import TableSchema

        schema = TableSchema("S", 3).key(0)
        assert schema.fds == (ColumnFD((0,), (1, 2)),)
