"""The LRU cap and stats counters of the memory ``EvaluationCache``."""

from __future__ import annotations

import pytest

from repro.api import EngineConfig
from repro.core import Atom, Scan, Variable, parse_query
from repro.db import ProbabilisticDatabase
from repro.engine import DissociationEngine, EvaluationCache, evaluate_plan

X, Y = Variable("x"), Variable("y")


def _db(relations: int = 4) -> ProbabilisticDatabase:
    db = ProbabilisticDatabase()
    for i in range(relations):
        db.add_table(f"R{i}", [((1, i), 0.5), ((2, i), 0.25)])
    return db


def _scan(i: int) -> Scan:
    return Scan(Atom(f"R{i}", (X, Y)))


class TestLRUCap:
    def test_unbounded_by_default(self):
        cache = EvaluationCache(_db())
        assert cache.max_plans is None
        for i in range(4):
            evaluate_plan(_scan(i), cache.db, cache=cache)
        assert len(cache._plans) == 4
        assert cache.cache_stats()["evictions"] == 0

    def test_eviction_order_is_least_recently_used(self):
        db = _db()
        cache = EvaluationCache(db, max_plans=2)
        evaluate_plan(_scan(0), db, cache=cache)
        evaluate_plan(_scan(1), db, cache=cache)
        evaluate_plan(_scan(0), db, cache=cache)  # touch 0: 1 is now LRU
        evaluate_plan(_scan(2), db, cache=cache)  # evicts 1, not 0
        assert list(cache._plans) == [_scan(0), _scan(2)]
        assert cache.cache_stats()["evictions"] == 1

    def test_cap_one_keeps_only_latest(self):
        db = _db()
        cache = EvaluationCache(db, max_plans=1)
        evaluate_plan(_scan(0), db, cache=cache)
        evaluate_plan(_scan(1), db, cache=cache)
        assert list(cache._plans) == [_scan(1)]
        # a hit on the survivor, then a miss that evicts it
        evaluate_plan(_scan(1), db, cache=cache)
        evaluate_plan(_scan(2), db, cache=cache)
        stats = cache.cache_stats()
        assert stats == {
            "hits": 1,
            "misses": 3,
            "evictions": 2,
            "size": 1,
            "max_size": 1,
        }

    def test_cap_zero_disables_plan_memoization(self):
        db = _db()
        cache = EvaluationCache(db, max_plans=0)
        first = evaluate_plan(_scan(0), db, cache=cache)
        second = evaluate_plan(_scan(0), db, cache=cache)
        assert first == second
        stats = cache.cache_stats()
        assert stats["size"] == 0
        assert stats["hits"] == 0
        assert stats["misses"] == 2
        assert stats["evictions"] == 0
        # encoded relations are representation, not plan results: cached
        assert len(cache._tables) == 1

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            EvaluationCache(_db(), max_plans=-1)

    def test_plan_scope_inherits_cap(self):
        cache = EvaluationCache(_db(), max_plans=3)
        scope = cache.plan_scope()
        assert scope.max_plans == 3
        assert scope.cache_stats()["hits"] == 0

    def test_plan_scope_never_serves_stale_encodings(self):
        # regression: a scope taken from an unvalidated parent after a
        # mutation must still see the mutation (it inherits the parent's
        # token, not a fresh snapshot that would mask the staleness)
        db = _db()
        cache = EvaluationCache(db)
        evaluate_plan(_scan(0), db, cache=cache)
        db.table("R0").insert((3, 0), 0.75)
        scores = evaluate_plan(_scan(0), db, cache=cache.plan_scope())
        assert scores[(3, 0)] == 0.75

    def test_cap_zero_still_shares_dag_nodes_within_one_call(self, monkeypatch):
        # max_plans=0 bounds retained state, not intra-call sharing:
        # shared nodes of one merged-plan DAG must evaluate once
        import repro.engine.extensional as ext

        db = _db()
        q = parse_query("q() :- R0(x,y), R1(y,z), R2(z,w)")
        engine = DissociationEngine(db, EngineConfig(cache_size=0))
        merged = engine.single_plan(q)
        distinct_scans = len({n for n in merged.walk() if isinstance(n, Scan)})
        calls = []
        original = ext._scan
        monkeypatch.setattr(
            ext, "_scan", lambda plan, cache: calls.append(plan) or original(plan, cache)
        )
        engine.propagation_score(q)
        assert len(calls) == distinct_scans

    def test_validate_clears_entries_but_keeps_counters(self):
        db = _db()
        cache = EvaluationCache(db)
        evaluate_plan(_scan(0), db, cache=cache)
        evaluate_plan(_scan(0), db, cache=cache)
        assert cache.cache_stats()["hits"] == 1
        db.table("R0").insert((9, 9), 0.1)
        cache.validate()
        stats = cache.cache_stats()
        assert stats["size"] == 0
        assert stats["hits"] == 1  # cumulative


class TestEngineIntegration:
    def test_capped_engine_matches_uncapped(self):
        db = _db()
        q = parse_query("q(x) :- R0(x,y), R1(y,z)")
        want = DissociationEngine(db).propagation_score(q)
        for cap in (0, 1, 2):
            engine = DissociationEngine(db, EngineConfig(cache_size=cap))
            assert engine.propagation_score(q) == want
            assert engine.cache_stats()["max_size"] == cap

    def test_memory_cache_stats_surface_through_engine(self):
        db = _db()
        q = parse_query("q(x) :- R0(x,y)")
        engine = DissociationEngine(db)
        assert engine.cache_stats()["size"] == 0  # before any evaluation
        engine.propagation_score(q)
        first = engine.cache_stats()
        assert first["size"] > 0
        engine.propagation_score(q)
        assert engine.cache_stats()["hits"] > first["hits"]
