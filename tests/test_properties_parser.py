"""Property-based tests for the query parser (round-trips, fuzzing)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    Atom,
    ConjunctiveQuery,
    Constant,
    QueryParseError,
    Variable,
    parse_query,
)

_names = st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True)
_relations = st.from_regex(r"[A-Z][A-Za-z0-9_]{0,5}", fullmatch=True)
_constants = st.one_of(
    st.integers(-1000, 1000),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x2FF
        ),
        max_size=8,
    ),
)


@st.composite
def random_queries(draw):
    n_atoms = draw(st.integers(1, 4))
    variable_pool = draw(
        st.lists(_names, min_size=1, max_size=4, unique=True)
    )
    variables = [Variable(n) for n in variable_pool]
    relation_names = draw(
        st.lists(_relations, min_size=n_atoms, max_size=n_atoms, unique=True)
    )
    atoms = []
    for rel in relation_names:
        arity = draw(st.integers(1, 3))
        terms = []
        for _ in range(arity):
            if draw(st.booleans()):
                terms.append(draw(st.sampled_from(variables)))
            else:
                terms.append(Constant(draw(_constants)))
        atoms.append(Atom(rel, tuple(terms)))
    used = sorted(
        frozenset().union(*(a.own_variables for a in atoms)), key=str
    )
    head = used[: draw(st.integers(0, len(used)))]
    return ConjunctiveQuery(atoms, head)


@settings(max_examples=200, deadline=None)
@given(random_queries())
def test_str_parse_round_trip(query):
    assert parse_query(str(query)) == query


@settings(max_examples=200, deadline=None)
@given(random_queries())
def test_round_trip_preserves_head_order(query):
    reparsed = parse_query(str(query))
    assert reparsed.head_order == query.head_order


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=40))
def test_fuzz_never_crashes_unexpectedly(text):
    """Arbitrary input either parses or raises QueryParseError/ValueError —
    never any other exception type."""
    try:
        parse_query(text)
    except (QueryParseError, ValueError):
        pass


@settings(max_examples=100, deadline=None)
@given(random_queries())
def test_parsed_query_is_self_join_free(query):
    reparsed = parse_query(str(query))
    names = [a.relation for a in reparsed.atoms]
    assert len(names) == len(set(names))
