"""Unit tests for repro.core.parser."""

import pytest

from repro.core import Constant, QueryParseError, Variable, parse_atom, parse_query


class TestQueries:
    def test_simple(self):
        q = parse_query("q(z) :- R(z,x), S(x,y), T(y)")
        assert len(q.atoms) == 3
        assert q.head == {Variable("z")}

    def test_boolean(self):
        q = parse_query("q() :- R(x)")
        assert q.is_boolean()

    def test_alternative_arrow(self):
        q = parse_query("q(x) <- R(x)")
        assert q.head == {Variable("x")}

    def test_whitespace_insensitive(self):
        q1 = parse_query("q(x):-R(x,y),S(y)")
        q2 = parse_query("q( x )  :-  R( x , y ) , S( y )")
        assert q1 == q2

    def test_name_preserved(self):
        assert parse_query("myQuery(x) :- R(x)").name == "myQuery"

    def test_zero_arity_atom(self):
        q = parse_query("q() :- R()")
        assert q.atoms[0].arity == 0


class TestConstants:
    def test_single_quoted_string(self):
        q = parse_query("q() :- R('a', x)")
        assert q.atoms[0].terms[0] == Constant("a")

    def test_double_quoted_string(self):
        q = parse_query('q() :- R("hello world", x)')
        assert q.atoms[0].terms[0] == Constant("hello world")

    def test_integer(self):
        q = parse_query("q() :- R(42, x)")
        assert q.atoms[0].terms[0] == Constant(42)

    def test_negative_integer(self):
        q = parse_query("q() :- R(-3)")
        assert q.atoms[0].terms[0] == Constant(-3)

    def test_float(self):
        q = parse_query("q() :- R(2.5)")
        assert q.atoms[0].terms[0] == Constant(2.5)


class TestErrors:
    def test_missing_arrow(self):
        with pytest.raises(QueryParseError):
            parse_query("q(x) R(x)")

    def test_constant_in_head(self):
        with pytest.raises(QueryParseError, match="head terms"):
            parse_query("q('a') :- R('a', x)")

    def test_trailing_garbage(self):
        with pytest.raises(QueryParseError):
            parse_query("q(x) :- R(x) extra")

    def test_unclosed_paren(self):
        with pytest.raises(QueryParseError):
            parse_query("q(x :- R(x)")

    def test_bad_character(self):
        with pytest.raises(QueryParseError):
            parse_query("q(x) :- R(x) & S(x)")

    def test_self_join_raises(self):
        with pytest.raises(ValueError, match="self-join"):
            parse_query("q() :- R(x), R(y)")


class TestAtoms:
    def test_parse_atom(self):
        a = parse_atom("S(x, y)")
        assert a.relation == "S"
        assert a.own_variables == {Variable("x"), Variable("y")}

    def test_parse_atom_rejects_trailing(self):
        with pytest.raises(QueryParseError):
            parse_atom("S(x), T(y)")
