"""Tests for hierarchical queries (Def. 1 / Lemma 3) and safety."""

import random

import pytest

from repro.core import (
    hierarchy_violations,
    is_hierarchical,
    is_hierarchical_recursive,
    is_safe,
    parse_query,
)
from repro.workloads import chain_query, star_query

from .helpers import random_query


class TestPaperExamples:
    def test_hierarchical_example(self):
        # q1 :- R(x,y), S(y,z), T(y,z,u) is hierarchical (Sec. 2)
        q = parse_query("q() :- R(x,y), S(y,z), T(y,z,u)")
        assert is_hierarchical(q)

    def test_non_hierarchical_example(self):
        # q2 :- R(x,y), S(y,z), T(z,u) is not (y and z violate)
        q = parse_query("q() :- R(x,y), S(y,z), T(z,u)")
        assert not is_hierarchical(q)
        witnesses = hierarchy_violations(q)
        names = {frozenset((a.name, b.name)) for a, b in witnesses}
        assert frozenset(("y", "z")) in names

    def test_rst_pattern_unsafe(self):
        # the canonical #P-hard query
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        assert not is_hierarchical(q)
        assert not is_safe(q)

    def test_rs_pattern_safe(self):
        q = parse_query("q() :- R(x), S(x,y)")
        assert is_hierarchical(q)
        assert is_safe(q)

    def test_example_17_unsafe(self):
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        assert not is_hierarchical(q)


class TestHeadVariables:
    def test_head_variables_excluded(self):
        # unsafe as Boolean, safe when y is a head variable
        q_bool = parse_query("q() :- R(x), S(x,y), T(y)")
        q_head = parse_query("q(y) :- R(x), S(x,y), T(y)")
        assert not is_hierarchical(q_bool)
        assert is_hierarchical(q_head)

    def test_single_atom_always_hierarchical(self):
        assert is_hierarchical(parse_query("q() :- R(x,y,z)"))


class TestWorkloadShapes:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_chains_unsafe_beyond_2(self, k):
        assert not is_hierarchical(chain_query(k))

    @pytest.mark.parametrize("k", [1, 2])
    def test_short_chains_safe(self, k):
        # the 2-chain has a single existential variable → hierarchical
        # (matching #MP = 1 in Fig. 2)
        assert is_hierarchical(chain_query(k))

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_stars_unsafe_beyond_1(self, k):
        assert not is_hierarchical(star_query(k))

    def test_star_1_safe(self):
        assert is_hierarchical(star_query(1))


class TestDissociatedQueries:
    def test_dissociation_restores_hierarchy(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        from repro.core import Variable

        q_diss = q.dissociate({"T": frozenset([Variable("x")])})
        assert is_hierarchical(q_diss)

    def test_safe_unsafe_safe_along_lattice(self):
        # Sec. 3.1: safety can toggle along the dissociation lattice
        from repro.core import Variable

        x, y = Variable("x"), Variable("y")
        q = parse_query("q() :- R(x), S(x), T(y)")
        assert is_hierarchical(q)
        q1 = q.dissociate({"S": frozenset([y])})
        assert not is_hierarchical(q1)
        q2 = q1.dissociate({"T": frozenset([x])})
        assert is_hierarchical(q2)


class TestRecursiveCharacterization:
    def test_agrees_with_pairwise_on_random_queries(self):
        rng = random.Random(7)
        for _ in range(300):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            assert is_hierarchical(q) == is_hierarchical_recursive(q), str(q)

    def test_agrees_on_workloads(self):
        for k in range(1, 6):
            q = chain_query(k)
            assert is_hierarchical(q) == is_hierarchical_recursive(q)
            q = star_query(k)
            assert is_hierarchical(q) == is_hierarchical_recursive(q)
