"""Unit tests for repro.core.atoms."""

import pytest

from repro.core import Atom, Constant, Variable, parse_atom

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestConstruction:
    def test_basic(self):
        a = Atom("R", (x, y))
        assert a.relation == "R"
        assert a.arity == 2
        assert a.own_variables == {x, y}

    def test_constants_allowed(self):
        a = Atom("R", (Constant("a"), x))
        assert a.has_constants()
        assert a.own_variables == {x}

    def test_zero_arity(self):
        a = Atom("R", ())
        assert a.arity == 0
        assert a.own_variables == frozenset()

    def test_rejects_bad_terms(self):
        with pytest.raises(TypeError):
            Atom("R", ("x",))  # type: ignore[arg-type]

    def test_rejects_empty_relation(self):
        with pytest.raises(ValueError):
            Atom("", (x,))

    def test_repeated_variable(self):
        a = Atom("R", (x, x))
        assert a.own_variables == {x}
        assert a.arity == 2


class TestDissociation:
    def test_dissociate_adds_structural_variables(self):
        a = Atom("R", (x,)).dissociate([y])
        assert a.own_variables == {x}
        assert a.variables == {x, y}
        assert a.dissociated == {y}

    def test_dissociate_ignores_present_variables(self):
        a = Atom("R", (x, y)).dissociate([y, z])
        assert a.dissociated == {z}

    def test_dissociate_noop_returns_self(self):
        a = Atom("R", (x, y))
        assert a.dissociate([x]) is a

    def test_rejects_overlapping_dissociation(self):
        with pytest.raises(ValueError):
            Atom("R", (x,), dissociated=[x])

    def test_without_dissociation(self):
        a = Atom("R", (x,), dissociated=[y])
        assert a.without_dissociation() == Atom("R", (x,))

    def test_str_shows_dissociation(self):
        a = Atom("R", (x,), dissociated=[y])
        assert "R^{y}" in str(a)


class TestRestrict:
    def test_restrict_drops_variables(self):
        a = Atom("R", (x, y, z)).restrict(frozenset([x]))
        assert a.terms == (x,)

    def test_restrict_keeps_constants(self):
        a = Atom("R", (Constant(1), x)).restrict(frozenset())
        assert a.terms == (Constant(1),)

    def test_restrict_drops_dissociated(self):
        a = Atom("R", (x,), dissociated=[y]).restrict(frozenset([x]))
        assert a.dissociated == frozenset()


class TestEquality:
    def test_equal_atoms(self):
        assert Atom("R", (x, y)) == Atom("R", (x, y))

    def test_dissociation_matters(self):
        assert Atom("R", (x,)) != Atom("R", (x,), dissociated=[y])

    def test_hashable(self):
        assert len({Atom("R", (x,)), Atom("R", (x,))}) == 1

    def test_parse_round_trip(self):
        a = parse_atom("R('a', x, 3)")
        assert a.relation == "R"
        assert a.terms[0] == Constant("a")
        assert a.terms[1] == x
        assert a.terms[2] == Constant(3)
