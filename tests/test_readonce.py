"""Tests for read-once detection and factorization."""

import itertools
import random

import pytest

from repro.lineage import (
    DNF,
    RAnd,
    ROr,
    RVar,
    exact_probability,
    is_read_once,
    lineage_of,
    read_once_probability,
    try_read_once,
)

from .test_formula import brute_force_probability


class TestPositiveCases:
    def test_single_variable(self):
        tree = try_read_once(DNF([["a"]]))
        assert isinstance(tree, RVar)

    def test_single_clause(self):
        tree = try_read_once(DNF([["a", "b", "c"]]))
        assert isinstance(tree, RAnd)
        assert tree.variables() == {"a", "b", "c"}

    def test_disjoint_or(self):
        tree = try_read_once(DNF([["a", "b"], ["c"]]))
        assert isinstance(tree, ROr)

    def test_common_factor(self):
        # x(y ∨ z) — the classic read-once shape
        tree = try_read_once(DNF([["x", "y"], ["x", "z"]]))
        assert tree is not None
        probs = {"x": 0.5, "y": 0.3, "z": 0.8}
        assert abs(
            tree.probability(probs) - exact_probability(DNF([["x", "y"], ["x", "z"]]), probs)
        ) < 1e-12

    def test_and_of_ors(self):
        # (a ∨ b)(c ∨ d) expanded
        f = DNF([["a", "c"], ["a", "d"], ["b", "c"], ["b", "d"]])
        tree = try_read_once(f)
        assert tree is not None
        probs = {v: 0.4 for v in "abcd"}
        assert abs(
            tree.probability(probs) - brute_force_probability(f, probs)
        ) < 1e-12

    def test_nested_structure(self):
        # x(y ∨ z) ∨ w : or of independent parts
        f = DNF([["x", "y"], ["x", "z"], ["w"]])
        assert is_read_once(f)

    def test_absorption_applied_first(self):
        # xy ∨ x ≡ x is read-once after absorption
        assert is_read_once(DNF([["x", "y"], ["x"]]))

    def test_hierarchical_query_lineage_is_read_once(self):
        # safe queries have read-once lineages on every instance
        from repro.core import parse_query
        from repro.db import ProbabilisticDatabase

        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), ((2,), 0.6)])
        db.add_table("S", [((1, 3), 0.2), ((1, 4), 0.9), ((2, 3), 0.4)])
        q = parse_query("q() :- R(x), S(x,y)")
        lineage = lineage_of(q, db)
        assert is_read_once(lineage.by_answer[()])


class TestNegativeCases:
    def test_rst_lineage_not_read_once(self):
        # the canonical non-read-once formula: x1y1 ∨ y1x2 ∨ x2y2 (path P4)
        f = DNF([["x1", "y1"], ["x2", "y1"], ["x2", "y2"]])
        assert not is_read_once(f)

    def test_constants_return_none(self):
        assert try_read_once(DNF()) is None
        assert try_read_once(DNF([[]])) is None

    def test_read_once_probability_none_for_hard(self):
        f = DNF([["x1", "y1"], ["x2", "y1"], ["x2", "y2"]])
        assert read_once_probability(f, {}) is None


class TestSoundness:
    """Whenever a tree is returned, its probability must be exact."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_formulas(self, seed):
        rng = random.Random(seed)
        n_vars = rng.randint(2, 6)
        variables = [f"v{i}" for i in range(n_vars)]
        probs = {v: rng.random() for v in variables}
        clauses = [
            rng.sample(variables, rng.randint(1, min(3, n_vars)))
            for _ in range(rng.randint(1, 5))
        ]
        f = DNF(clauses)
        tree = try_read_once(f)
        if tree is None:
            return
        assert abs(
            tree.probability(probs) - brute_force_probability(f, probs)
        ) < 1e-9

    def test_tree_variables_unique(self):
        """Read-once: each variable appears exactly once in the tree."""

        def leaves(tree):
            if isinstance(tree, RVar):
                return [tree.variable]
            return [v for part in tree.parts for v in leaves(part)]

        rng = random.Random(77)
        for _ in range(40):
            n_vars = rng.randint(2, 6)
            variables = [f"v{i}" for i in range(n_vars)]
            clauses = [
                rng.sample(variables, rng.randint(1, min(3, n_vars)))
                for _ in range(rng.randint(1, 5))
            ]
            tree = try_read_once(DNF(clauses))
            if tree is None:
                continue
            found = leaves(tree)
            assert len(found) == len(set(found))

    def test_safe_query_lineages_random(self):
        """Safe query lineages are read-once and the factored probability
        matches the safe plan's score."""
        import random as _random

        from repro.core import is_hierarchical, safe_plan
        from repro.engine import plan_scores

        from .helpers import random_database_for, random_query

        rng = _random.Random(5)
        checked = 0
        for _ in range(80):
            q = random_query(rng, max_atoms=3, head_vars=0)
            if not is_hierarchical(q):
                continue
            db = random_database_for(q, rng, domain_size=2)
            lineage = lineage_of(q, db)
            if () not in lineage.by_answer:
                continue
            formula = lineage.by_answer[()]
            value = read_once_probability(formula, lineage.probabilities)
            if value is None:
                # detector may miss some shapes; soundness is what matters
                continue
            checked += 1
            score = plan_scores(safe_plan(q), q, db)[()]
            assert abs(value - score) < 1e-9
        assert checked > 10
