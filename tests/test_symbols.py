"""Unit tests for repro.core.symbols."""

import pytest

from repro.core import Constant, Variable, const, var, vars_


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hash_consistent(self):
        assert hash(Variable("x")) == hash(Variable("x"))
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_ordering_by_name(self):
        assert Variable("a") < Variable("b")
        assert sorted([Variable("z"), Variable("a")])[0].name == "a"

    def test_str_and_repr(self):
        assert str(Variable("x1")) == "x1"
        assert "x1" in repr(Variable("x1"))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            Variable(3)  # type: ignore[arg-type]

    def test_not_equal_to_constant(self):
        assert Variable("x") != Constant("x")


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant("1")

    def test_hash_distinct_from_variable(self):
        assert hash(Constant("x")) != hash(Variable("x"))

    def test_str_quotes_strings(self):
        assert str(Constant("a")) == "'a'"
        assert str(Constant(5)) == "5"

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            Constant([1, 2])


class TestShorthand:
    def test_var(self):
        assert var("x") == Variable("x")

    def test_const(self):
        assert const(7) == Constant(7)

    def test_vars_space_separated(self):
        x, y, z = vars_("x y z")
        assert (x.name, y.name, z.name) == ("x", "y", "z")

    def test_vars_comma_separated(self):
        a, b = vars_("a, b")
        assert (a.name, b.name) == ("a", "b")
