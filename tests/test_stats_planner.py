"""The statistics catalog, the cost model, and cost-based planning.

Covers the :mod:`repro.engine.stats` units (column summaries, MCV
sketches, incremental maintenance under the db-version token, the
Selinger DP enumerator and its greedy fallback, the Algorithm-3
materialization policy), ``engine.explain()``'s estimated-vs-actual
reporting, and seeded hypothesis property tests asserting that
cost-based join ordering produces **bit-identical** scores to the greedy
scheduler across all eight optimization combinations on random chain and
star workloads.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import EngineConfig
from repro.core import Variable, parse_query
from repro.core.plans import Join, Project, Scan
from repro.db import ProbabilisticDatabase
from repro.engine import DissociationEngine, Optimizations
from repro.engine.extensional import EvaluationCache
from repro.engine.stats import (
    DEFAULT_DP_THRESHOLD,
    JoinProfile,
    MaterializationPolicy,
    PlanEstimate,
    StatisticsCatalog,
    estimate_plan,
    greedy_order,
    join_profile,
    scan_profile,
    selinger_order,
)

from .helpers import assert_backends_agree


def _db() -> ProbabilisticDatabase:
    db = ProbabilisticDatabase()
    db.add_table(
        "R",
        [((1, 10), 0.5), ((1, 20), 0.5), ((2, 10), 0.5), ((3, 30), 0.5)],
    )
    db.add_table("S", [((10, 7), 0.5), ((20, 7), 0.5)])
    return db


class TestStatisticsCatalog:
    def test_table_stats_summary(self):
        db = _db()
        cache = EvaluationCache(db)
        stats = cache.table_statistics("R")
        assert stats.rows == 4
        assert stats.columns[0].distinct == 3  # values 1, 2, 3
        assert stats.columns[1].distinct == 3  # values 10, 20, 30
        code_of_one = cache.code_of(1)
        # value 1 appears twice in column 0 and leads the MCV sketch
        assert stats.columns[0].mcv[0] == (code_of_one, 2)
        assert stats.columns[0].frequency(code_of_one) == 2.0

    def test_stats_cached_while_table_unchanged(self):
        cache = EvaluationCache(_db())
        first = cache.table_statistics("R")
        assert cache.table_statistics("R") is first
        assert cache.statistics.recomputations == 1

    def test_mutation_invalidates_only_the_mutated_table(self):
        db = _db()
        cache = EvaluationCache(db)
        stats_r = cache.table_statistics("R")
        stats_s = cache.table_statistics("S")
        db.table("R").insert((4, 40), 0.5)
        cache.validate()  # db-version token moved: encoded tables drop
        new_r = cache.table_statistics("R")
        assert new_r is not stats_r
        assert new_r.rows == 5
        assert new_r.columns[0].distinct == 4
        # S was untouched: its summary survives the incremental refresh
        assert cache.table_statistics("S") is stats_s

    def test_catalog_validate_drops_stale_and_missing(self):
        db = _db()
        catalog = StatisticsCatalog(db)
        cache = EvaluationCache(db)
        catalog.table_stats("R", cache.encoded_table("R")[0])
        catalog.table_stats("S", cache.encoded_table("S")[0])
        db.table("R").insert((9, 90), 0.5)
        db.drop_table("S")
        catalog.validate()
        assert catalog.cached_tables() == frozenset()


class TestCardinalityModel:
    def test_scan_profile_constant_uses_mcv(self):
        db = _db()
        cache = EvaluationCache(db)
        stats = cache.table_statistics("R")
        q = parse_query("q(y) :- R(1, y)")
        profile = scan_profile(q.atoms[0], stats, cache.code_of)
        assert profile.rows == pytest.approx(2.0)  # exact MCV count

    def test_scan_profile_unseen_constant_is_empty(self):
        db = _db()
        cache = EvaluationCache(db)
        stats = cache.table_statistics("R")
        q = parse_query("q(y) :- R(99, y)")
        profile = scan_profile(q.atoms[0], stats, cache.code_of)
        assert profile.rows == 0.0

    def test_scan_profile_repeated_variable_pessimistic_cap(self):
        db = _db()
        cache = EvaluationCache(db)
        stats = cache.table_statistics("R")
        q = parse_query("q(x) :- R(x, x)")
        profile = scan_profile(q.atoms[0], stats, cache.code_of)
        # divided by the larger distinct count of the two positions
        assert profile.rows == pytest.approx(4 / 3)

    def test_join_profile_containment(self):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        left = JoinProfile(100.0, {x: 10.0, y: 50.0})
        right = JoinProfile(30.0, {y: 25.0, z: 30.0})
        joined = join_profile(left, right)
        assert joined.rows == pytest.approx(100 * 30 / 50)
        assert joined.distinct[y] == pytest.approx(25.0)
        assert joined.distinct[x] == pytest.approx(10.0)


class TestSelingerEnumerator:
    def test_picks_selective_order_greedy_misses(self):
        # three inputs: greedy starts from the smallest (A) and folds the
        # smallest connected one; the DP instead avoids the high-fanout
        # early join by cost
        x, y = Variable("x"), Variable("y")
        a = JoinProfile(10.0, {x: 1.0})       # tiny but x has fanout 10
        b = JoinProfile(100.0, {x: 1.0, y: 100.0})
        c = JoinProfile(50.0, {y: 50.0})
        order = selinger_order([a, b, c])
        # joining b ⋈ c first (y selective) is cheapest overall
        cost_dp = _order_cost([a, b, c], order)
        cost_greedy = _order_cost(
            [a, b, c], greedy_order([10, 100, 50], [{x}, {x, y}, {y}])
        )
        assert cost_dp <= cost_greedy

    def test_avoids_cross_products_when_connected(self):
        x, y = Variable("x"), Variable("y")
        profiles = [
            JoinProfile(10.0, {x: 10.0}),
            JoinProfile(10.0, {y: 10.0}),
            JoinProfile(10.0, {x: 10.0, y: 10.0}),
        ]
        order = selinger_order(profiles)
        # whichever side starts, the second input must connect to it
        first_two = {order[0], order[1]}
        assert 2 in first_two

    def test_deterministic_on_ties(self):
        x = Variable("x")
        profiles = [JoinProfile(10.0, {x: 5.0}) for _ in range(4)]
        assert selinger_order(profiles) == selinger_order(profiles)

    def test_dp_threshold_falls_back_to_greedy(self):
        # wide star join above the threshold: explain() reports the
        # fallback method, below it reports the DP
        k = 4
        atoms = ", ".join(f"R{i}(x, y{i})" for i in range(k))
        q = parse_query(f"q(x) :- {atoms}")
        db = ProbabilisticDatabase()
        for i in range(k):
            db.add_table(f"R{i}", [((v, v + i), 0.5) for v in range(3)])
        low = DissociationEngine(db, EngineConfig(join_dp_threshold=2))
        high = DissociationEngine(db, EngineConfig(join_dp_threshold=DEFAULT_DP_THRESHOLD))
        methods_low = {
            j["method"]
            for entry in low.explain(q)["plans"]
            for j in entry["joins"]
        }
        methods_high = {
            j["method"]
            for entry in high.explain(q)["plans"]
            for j in entry["joins"]
        }
        assert "greedy-fallback" in methods_low
        assert methods_high == {"cost-dp"}

    def test_greedy_engine_reports_greedy(self):
        q = parse_query("q() :- R1(x0,x1), R2(x1,x2)")
        db = ProbabilisticDatabase()
        db.add_table("R1", [((1, 2), 0.5)])
        db.add_table("R2", [((2, 3), 0.5)])
        engine = DissociationEngine(db, EngineConfig(join_ordering="greedy"))
        methods = {
            j["method"]
            for entry in engine.explain(q)["plans"]
            for j in entry["joins"]
        }
        assert methods == {"greedy"}

    def test_invalid_join_ordering_rejected(self):
        db = _db()
        with pytest.raises(ValueError):
            DissociationEngine(db, EngineConfig(join_ordering="random"))
        with pytest.raises(ValueError):
            EvaluationCache(db, join_ordering="selinger")


def _order_cost(profiles, order):
    from repro.engine.stats import FOLD_COST_FACTOR

    profile = profiles[order[0]]
    cost = 0.0
    for j in order[1:]:
        profile = join_profile(profile, profiles[j])
        cost += profile.rows + FOLD_COST_FACTOR * profiles[j].rows
    return cost


class TestExplain:
    def test_every_join_reports_estimated_and_actual(self):
        from repro.workloads import chain_database, chain_query

        q = chain_query(4)
        db = chain_database(4, 50, seed=2, p_max=0.5)
        engine = DissociationEngine(db)
        report = engine.explain(
            q, Optimizations(single_plan=False, reuse_views=True)
        )
        assert report["plan_count"] == len(engine.minimal_plans(q))
        assert len(report["plans"]) == report["plan_count"]
        total_joins = 0
        for entry in report["plans"]:
            for join in entry["joins"]:
                total_joins += 1
                assert join["steps"], "every join folds at least once"
                for step in join["steps"]:
                    assert step["estimated_rows"] >= 0.0
                    assert isinstance(step["actual_rows"], int)
        assert total_joins > 0
        # every executed join node of every plan is covered
        for entry, plan in zip(
            report["plans"],
            engine.minimal_plans(q),
        ):
            joins_in_plan = {
                str(node)
                for node in plan.walk()
                if isinstance(node, Join)
            }
            assert {j["join"] for j in entry["joins"]} == joins_in_plan

    def test_explain_estimates_match_actuals_on_uniform_data(self):
        from repro.workloads import chain_database, chain_query

        q = chain_query(3)
        db = chain_database(3, 200, seed=7, p_max=0.5)
        report = DissociationEngine(db).explain(q)
        for entry in report["plans"]:
            for join in entry["joins"]:
                for step in join["steps"]:
                    if step["actual_rows"] == 0:
                        continue
                    ratio = step["estimated_rows"] / step["actual_rows"]
                    assert 0.2 <= ratio <= 5.0, (
                        "estimates should track actuals on uniform data"
                    )

    def test_sqlite_explain_includes_materialization_analysis(self):
        from repro.workloads import chain_database, chain_query

        q = chain_query(4)
        db = chain_database(4, 30, seed=3, p_max=0.5)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        report = engine.explain(
            q, Optimizations(single_plan=False, reuse_views=True)
        )
        decisions = report["materialization"]
        assert decisions, "chain plans share subplans"
        shared = [d for d in decisions if d["references"] >= 2]
        one_shot = [d for d in decisions if d["references"] == 1]
        assert shared and one_shot
        assert all(d["materialize"] for d in shared)
        assert all(
            d["estimated_cost"] >= 0.0 and d["estimated_rows"] >= 0.0
            for d in decisions
        )


class TestMaterializationPolicy:
    def test_single_reference_never_materializes(self):
        policy = MaterializationPolicy()
        assert not policy.should_materialize(object(), 1, 0)

    def test_shared_reference_materializes_without_estimator(self):
        policy = MaterializationPolicy()
        assert policy.should_materialize(object(), 2, 0)

    def test_prior_request_promotes_one_shot(self):
        policy = MaterializationPolicy()
        assert policy.should_materialize(object(), 1, 1)

    def test_cost_gate_declines_cheap_subplans(self):
        cheap = PlanEstimate(rows=100.0, cost=100.0, profile=None)
        policy = MaterializationPolicy(
            estimator=lambda node: cheap, write_factor=2.0
        )
        # saving one evaluation (cost 100) does not beat writing 100 rows
        assert not policy.should_materialize(object(), 2, 0)
        # three references save 200 ≥ 2 × 100
        assert policy.should_materialize(object(), 3, 0)


class TestDifferentialOrdering:
    """Cost-based vs greedy must be bit-identical, across all 8 combos."""

    @given(
        k=st.integers(2, 4),
        n=st.integers(5, 30),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_chain_workloads_bit_identical(self, k, n, seed):
        from repro.workloads import chain_database, chain_query

        q = chain_query(k)
        db = chain_database(k, n, seed=seed, p_max=0.6)
        assert_backends_agree(q, db, compare_orderings=True)

    @given(
        k=st.integers(1, 3),
        n=st.integers(5, 25),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_star_workloads_bit_identical(self, k, n, seed):
        from repro.workloads import star_database, star_query

        q = star_query(k)
        db = star_database(k, n, seed=seed, p_max=0.6)
        assert_backends_agree(q, db, compare_orderings=True)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_score_per_plan_shares_ordering_decisions(self, seed):
        from repro.workloads import chain_database, chain_query

        q = chain_query(3)
        db = chain_database(3, 20, seed=seed, p_max=0.6)
        cost = DissociationEngine(db, EngineConfig(join_ordering="cost"))
        greedy = DissociationEngine(db, EngineConfig(join_ordering="greedy"))
        per_plan_cost = cost.score_per_plan(q)
        per_plan_greedy = greedy.score_per_plan(q)
        assert per_plan_cost == per_plan_greedy  # bit-identical


class TestEstimatePlan:
    def test_plan_estimate_is_finite_and_positive(self):
        from repro.workloads import chain_database, chain_query

        q = chain_query(4)
        db = chain_database(4, 40, seed=9, p_max=0.5)
        engine = DissociationEngine(db)
        cache = EvaluationCache(db)
        memo = {}
        for plan in engine.minimal_plans(q):
            estimate = estimate_plan(
                plan, cache.table_statistics, cache.code_of, memo
            )
            assert np.isfinite(estimate.rows) and estimate.rows >= 0
            assert np.isfinite(estimate.cost) and estimate.cost > 0
            # cost dominates output size: computing a subtree reads at
            # least what it emits
            assert estimate.cost >= estimate.rows

    def test_scan_estimate_matches_table(self):
        db = _db()
        cache = EvaluationCache(db)
        q = parse_query("q(x, y) :- R(x, y)")
        scan = Scan(q.atoms[0])
        estimate = estimate_plan(scan, cache.table_statistics, cache.code_of)
        assert estimate.rows == 4.0


class TestSQLiteStatisticsCatalog:
    """The pure-SQL statistics path: no in-RAM encodings for sqlite-only
    deployments, token-keyed invalidation, and agreement with the
    in-memory catalog's counts."""

    def test_counts_agree_with_memory_catalog(self):
        from repro.db import SQLiteBackend
        from repro.engine.stats import SQLiteStatisticsCatalog
        from repro.workloads import chain_database

        db = chain_database(3, 50, seed=21, p_max=0.5)
        backend = SQLiteBackend(db)
        sql_catalog = SQLiteStatisticsCatalog(backend)
        cache = EvaluationCache(db)
        for name in db.table_names:
            sql_stats = sql_catalog.table_stats(name)
            mem_stats = cache.table_statistics(name)
            assert sql_stats.rows == mem_stats.rows
            assert len(sql_stats.columns) == len(mem_stats.columns)
            for sql_col, mem_col in zip(
                sql_stats.columns, mem_stats.columns
            ):
                assert sql_col.count == mem_col.count
                assert sql_col.distinct == mem_col.distinct
                # the sketches cover the same total frequency mass
                assert sum(c for _, c in sql_col.mcv) == sum(
                    c for _, c in mem_col.mcv
                )
        backend.close()

    def test_identity_code_of_prices_constants(self):
        from repro.db import SQLiteBackend
        from repro.engine.stats import SQLiteStatisticsCatalog

        db = _db()
        backend = SQLiteBackend(db)
        catalog = SQLiteStatisticsCatalog(backend)
        q = parse_query("q(y) :- R(1, y)")
        profile = scan_profile(
            q.atoms[0], catalog.table_stats("R"), catalog.code_of
        )
        # value 1 occurs twice among four rows
        assert profile.rows == pytest.approx(2.0)
        backend.close()

    def test_token_keyed_invalidation(self):
        from repro.db import SQLiteBackend
        from repro.engine.stats import SQLiteStatisticsCatalog

        db = _db()
        backend = SQLiteBackend(db)
        catalog = SQLiteStatisticsCatalog(backend)
        first = catalog.table_stats("R", token="a")
        assert catalog.table_stats("R", token="a") is first  # cached
        assert catalog.recomputations == 1
        second = catalog.table_stats("R", token="b")  # token moved
        assert catalog.recomputations == 2
        assert second.rows == first.rows
        backend.close()

    def test_sqlite_evaluation_builds_no_ram_encodings(self):
        from repro.workloads import chain_database, chain_query

        q = chain_query(3)
        db = chain_database(3, 40, seed=22, p_max=0.5)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        engine.propagation_score(
            q, Optimizations(single_plan=False, reuse_views=True)
        )
        engine.propagation_score(q, Optimizations())
        # pricing went through SQL aggregates: the memory-side cache
        # (and with it the encoded copies of every table) was never built
        assert engine._memory_cache is None


class TestReducedTableStatistics:
    """Satellite: semi-join pricing uses the *reduced* tables' stats."""

    def _selective_db(self):
        db = ProbabilisticDatabase()
        # R is large but only one tuple of R survives the semi-join with S
        db.add_table(
            "R", [((i, i + 1000), 0.5) for i in range(200)]
        )
        db.add_table("S", [((1000, 5), 0.5)])
        return db

    def test_reduced_stats_shrink_the_estimates(self):
        from repro.engine.semijoin import semijoin_statements
        from repro.core.plans import Scan

        db = self._selective_db()
        q = parse_query("q() :- R(x, y), S(y, z)")
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        backend = engine.sqlite
        statements, table_names = semijoin_statements(q, db.schema)
        backend.run_statements(statements)
        token = backend.reduction_token(statements, table_names.values())
        reduced = engine._plan_estimator(
            table_names=table_names, stats_token=token
        )
        base = engine._plan_estimator()
        scan = Scan(q.atoms[0])
        assert base(scan).rows == pytest.approx(200.0)
        assert reduced(scan).rows == pytest.approx(1.0)

    def test_semijoin_evaluation_still_correct(self):
        db = self._selective_db()
        q = parse_query("q() :- R(x, y), S(y, z)")
        for opts in (
            Optimizations.all(),
            Optimizations(single_plan=False, reuse_views=True, semijoin=True),
        ):
            got = DissociationEngine(db, EngineConfig(backend="sqlite")).propagation_score(
                q, opts
            )
            want = DissociationEngine(db).propagation_score(q, opts)
            assert set(got) == set(want)
            for answer in want:
                assert got[answer] == pytest.approx(want[answer], abs=1e-12)


class TestWriteFactorCalibration:
    """Satellite: the materialization gate's write factor is measured,
    not baked in."""

    def test_measure_write_factor_in_clamp_range(self):
        from repro.db import SQLiteBackend

        db = _db()
        backend = SQLiteBackend(db)
        factor = backend.measure_write_factor(sample_rows=512, repeats=2)
        assert 0.5 <= factor <= 16.0
        backend.close()

    def test_engine_calibration_installs_the_factor(self):
        from repro.workloads import chain_database

        db = chain_database(3, 20, seed=23, p_max=0.5)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        assert engine.write_factor is None
        factor = engine.calibrate_write_factor(sample_rows=512, repeats=2)
        assert engine.write_factor == factor
        assert 0.5 <= factor <= 16.0

    def test_memory_backend_cannot_calibrate(self):
        db = _db()
        with pytest.raises(ValueError):
            DissociationEngine(db).calibrate_write_factor()

    def test_write_factor_steers_the_policy(self):
        from repro.workloads import chain_database, chain_query

        q = chain_query(5)
        db = chain_database(5, 40, seed=24, p_max=0.5)
        all_plans = Optimizations(single_plan=False, reuse_views=True)
        stingy = DissociationEngine(
            db, EngineConfig(backend="sqlite", write_factor=1e12)
        )
        stingy.propagation_score(q, all_plans)
        assert stingy.cache_stats()["misses"] == 0  # nothing materialized
        eager = DissociationEngine(db, EngineConfig(backend="sqlite", write_factor=0.0))
        eager.propagation_score(q, all_plans)
        assert eager.cache_stats()["misses"] > 0  # every shared subplan
