"""Tests for Algorithm 2 (Opt. 1 single plan) and subplan sharing (Opt. 2)."""

import random

from repro.core import ColumnFD, MinPlan, parse_query
from repro.core.singleplan import single_plan
from repro.engine import DissociationEngine, Optimizations, plan_scores
from repro.workloads import chain_query, star_query

from .helpers import assert_scores_close, random_database_for, random_query


class TestStructure:
    def test_safe_query_has_no_min(self):
        plan = single_plan(parse_query("q() :- R(x), S(x,y)"))
        assert not plan.contains_min()

    def test_unsafe_query_has_min(self):
        plan = single_plan(parse_query("q() :- R(x), S(x,y), T(y)"))
        assert plan.contains_min()

    def test_min_children_share_heads(self):
        plan = single_plan(chain_query(5))
        for node in plan.walk():
            if isinstance(node, MinPlan):
                heads = {c.head_variables for c in node.parts}
                assert len(heads) == 1

    def test_example_29_shares_subplans(self):
        # q :- R(x,z), S(y,u), T(z), U(u), M(x,y,z,u): the single plan
        # re-uses common views (V1, V2, V3 in Fig. 4c)
        q = parse_query("q() :- R(x,z), S(y,u), T(z), U(u), M(x,y,z,u)")
        plan = single_plan(q)
        # count references vs distinct nodes: sharing means strictly fewer
        # distinct ids than path-references
        references = sum(1 for _ in plan.walk())
        distinct = len({id(n) for n in plan.walk()})
        assert distinct < references

    def test_dag_smaller_than_plan_forest(self):
        from repro.core import minimal_plans

        q = chain_query(6)
        forest_nodes = sum(p.count_nodes() for p in minimal_plans(q))
        dag_nodes = len({id(n) for n in single_plan(q).walk()})
        assert dag_nodes < forest_nodes

    def test_deterministic_stopping_rule(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        plan = single_plan(q, deterministic={"T"})
        assert not plan.contains_min()

    def test_fd_prunes_min(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        plan = single_plan(q, fds={"S": [ColumnFD((0,), (1,))]})
        assert not plan.contains_min()


def _assert_sandwich(q, db, tolerance=1e-9):
    """exact ≤ single-plan score ≤ min over minimal plans, per answer."""
    merged = plan_scores(single_plan(q), q, db)
    engine = DissociationEngine(db)
    separate = engine.propagation_score(q, Optimizations.none())
    exact = engine.exact(q)
    assert set(merged) == set(separate) == set(exact)
    for answer in merged:
        assert merged[answer] <= separate[answer] + tolerance, answer
        assert merged[answer] >= exact[answer] - tolerance, answer


class TestEquivalence:
    """Per tuple, the single plan is at least as tight as the min over all
    minimal plans (strictly tighter when different intermediate tuples
    prefer different branches) and never drops below the exact
    probability — see the semantics note in repro.core.singleplan."""

    def test_example_17_exact_match(self):
        # one Boolean answer whose min node has a unique best branch:
        # merged == min over plans here
        db = __import__("repro.db", fromlist=["ProbabilisticDatabase"]).ProbabilisticDatabase()
        half = 0.5
        db.add_table("R", [((1,), half), ((2,), half)])
        db.add_table("S", [((1,), half), ((2,), half)])
        db.add_table("T", [((1, 1), half), ((1, 2), half), ((2, 2), half)])
        db.add_table("U", [((1,), half), ((2,), half)])
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        merged = plan_scores(single_plan(q), q, db)
        assert abs(merged[()] - 169 / 2**10) < 1e-12

    def test_sandwich_example_17(self):
        rng = random.Random(1)
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        db = random_database_for(q, rng)
        _assert_sandwich(q, db)

    def test_sandwich_on_chains(self):
        rng = random.Random(2)
        for k in (3, 4, 5):
            q = chain_query(k)
            db = random_database_for(q, rng, domain_size=3)
            _assert_sandwich(q, db)

    def test_sandwich_on_stars(self):
        rng = random.Random(3)
        for k in (2, 3):
            q = star_query(k)
            db = random_database_for(q, rng, domain_size=3)
            _assert_sandwich(q, db)

    def test_sandwich_on_random_queries(self):
        rng = random.Random(4)
        for _ in range(40):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            db = random_database_for(q, rng, domain_size=2)
            _assert_sandwich(q, db)

    def test_merged_can_be_strictly_tighter(self):
        # documents the per-tuple-min effect on the 4-chain
        q = chain_query(4)
        found = False
        for seed in range(30):
            db = random_database_for(q, random.Random(seed), domain_size=3)
            merged = plan_scores(single_plan(q), q, db)
            engine = DissociationEngine(db)
            separate = engine.propagation_score(q, Optimizations.none())
            if any(merged[a] < separate[a] - 1e-12 for a in merged):
                found = True
                break
        # strict tightening is possible (not guaranteed per instance, but
        # 30 random 3-chain instances reliably exhibit it)
        assert found
