"""The SQLite materialized temp-view registry (cross-backend Opt. 2).

Covers the :class:`SQLiteViewRegistry` unit behaviour (naming, LRU
pinning, stats), the engine lifecycle — view reuse across plans and
across queries, automatic invalidation when the database mutates — and
seeded hypothesis property tests that drive random chain/star workloads
through the differential harness, exercising the temp-view path against
the reference and columnar backends.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import EngineConfig
from repro.core import parse_query
from repro.db import ProbabilisticDatabase, SQLiteBackend, SQLiteViewRegistry
from repro.engine import DissociationEngine, Optimizations, SQLCompiler

from .helpers import (
    assert_backends_agree,
    assert_scores_close,
    random_database_for,
    random_query,
)

ALL_PLANS_REUSE = Optimizations(single_plan=False, reuse_views=True)


def _chain_db(k: int, n: int, seed: int) -> ProbabilisticDatabase:
    from repro.workloads import chain_database

    return chain_database(k, n, seed=seed, p_max=0.6)


class TestRegistryUnit:
    def _backend(self, max_views=None) -> SQLiteBackend:
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), ((2,), 0.25)])
        return SQLiteBackend(db, view_cache_size=max_views)

    def test_register_then_lookup(self):
        backend = self._backend()
        registry = backend.view_registry
        name, ddl = registry.register("key", "SELECT 1 AS one, 0.5 AS _p")
        assert name.startswith("dissoc_")
        assert ddl.startswith(f"CREATE TEMP TABLE {name}")
        assert registry.lookup("key") == name
        assert backend.execute(f"SELECT one, _p FROM {name}") == [(1, 0.5)]
        assert registry.cache_stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "invalidations": 0,
            "size": 1,
            "max_size": None,
        }

    def test_lookup_miss_returns_none_without_counting(self):
        registry = self._backend().view_registry
        assert registry.lookup("absent") is None
        # the miss is counted by the register() that follows
        assert registry.cache_stats()["misses"] == 0

    def test_lru_eviction_drops_table(self):
        backend = self._backend(max_views=1)
        registry = backend.view_registry
        first, _ = registry.register("a", "SELECT 1 AS v, 0.5 AS _p")
        second, _ = registry.register("b", "SELECT 2 AS v, 0.5 AS _p")
        assert registry.lookup("a") is None
        assert registry.lookup("b") == second
        with pytest.raises(Exception):
            backend.execute(f"SELECT * FROM {first}")
        assert registry.cache_stats()["evictions"] == 1

    def test_pin_scope_defers_eviction(self):
        backend = self._backend(max_views=1)
        registry = backend.view_registry
        with registry.pin_scope():
            a, _ = registry.register("a", "SELECT 1 AS v, 0.5 AS _p")
            b, _ = registry.register("b", "SELECT 2 AS v, 0.5 AS _p")
            # both pinned: over cap but nothing evicted yet
            assert len(registry) == 2
            assert backend.execute(f"SELECT v FROM {a}") == [(1,)]
        # cap enforced at scope exit (LRU first)
        assert len(registry) == 1
        assert registry.lookup("b") == b

    def test_clear_drops_everything(self):
        backend = self._backend()
        registry = backend.view_registry
        name, _ = registry.register("a", "SELECT 1 AS v, 0.5 AS _p")
        registry.clear()
        assert len(registry) == 0
        assert registry.lookup("a") is None
        with pytest.raises(Exception):
            backend.execute(f"SELECT * FROM {name}")

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            SQLiteViewRegistry(self._backend().connection, max_views=-1)

    def test_materialize_requires_reuse_and_no_redirection(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1, 2), 0.5)])
        q = parse_query("q() :- R(x, y)")
        (plan,) = DissociationEngine(db).minimal_plans(q)
        registry = SQLiteBackend(db).view_registry
        with pytest.raises(ValueError):
            SQLCompiler(db.schema, reuse_views=False).materialize(
                plan, q, registry
            )
        with pytest.raises(ValueError):
            SQLCompiler(
                db.schema, table_names={"R": "_red_R"}
            ).materialize(plan, q, registry)


class TestEngineViewReuse:
    def test_views_reused_across_plans_of_all_plans_mode(self):
        q = parse_query("q() :- R1(x0,x1), R2(x1,x2), R3(x2,x3)")
        db = _chain_db(3, 40, seed=7)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        engine.propagation_score(q, ALL_PLANS_REUSE)
        stats = engine.cache_stats()
        assert stats["hits"] > 0, "plans of a chain query share subplans"
        assert stats["size"] == stats["misses"]

    def test_views_reused_across_queries(self):
        q = parse_query("q() :- R1(x0,x1), R2(x1,x2), R3(x2,x3)")
        db = _chain_db(3, 40, seed=8)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        first = engine.propagation_score(q, ALL_PLANS_REUSE)
        after_first = engine.cache_stats()
        second = engine.propagation_score(q, ALL_PLANS_REUSE)
        after_second = engine.cache_stats()
        assert_scores_close(first, second)
        assert after_second["hits"] > after_first["hits"]
        # Algorithm 3: the second batch may *promote* subplans that were
        # inline one-shots in the first (they are now known to recur),
        # but by the third call the registry is steady — repeats only
        # reuse views, never create them.
        third = engine.propagation_score(q, ALL_PLANS_REUSE)
        after_third = engine.cache_stats()
        assert_scores_close(first, third)
        assert after_third["misses"] == after_second["misses"]
        assert after_third["hits"] > after_second["hits"]

    def test_single_plan_mode_also_registers_views(self):
        q = parse_query("q() :- R1(x0,x1), R2(x1,x2)")
        db = _chain_db(2, 30, seed=9)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        # Algorithm 3: a first call may keep every one-shot subplan
        # inline; the repeat is the reuse signal that promotes them.
        engine.propagation_score(q, Optimizations())
        engine.propagation_score(q, Optimizations())
        assert engine.cache_stats()["size"] > 0

    def test_reuse_views_off_bypasses_registry(self):
        q = parse_query("q() :- R1(x0,x1), R2(x1,x2)")
        db = _chain_db(2, 30, seed=10)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        engine.propagation_score(q, Optimizations.none())
        assert engine.cache_stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "size": 0,
            "max_size": None,
        }

    def test_semijoin_mode_reuses_views_by_content(self):
        # Opt. 3 + Opt. 2: views over per-query reduced tables are keyed
        # by (plan, reduced-table content), so repeating the same query
        # reuses them instead of bypassing the registry
        q = parse_query("q(x0) :- R1(x0,x1), R2(x1,x2), R3(x2,x3)")
        db = _chain_db(3, 40, seed=11)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        want = DissociationEngine(db).propagation_score(q, Optimizations.all())
        first = engine.propagation_score(q, Optimizations.all())
        assert_scores_close(first, want)
        engine.propagation_score(q, Optimizations.all())  # may promote
        steady = engine.cache_stats()
        third = engine.propagation_score(q, Optimizations.all())
        assert_scores_close(third, want)
        after = engine.cache_stats()
        assert after["misses"] == steady["misses"]
        assert after["hits"] > steady["hits"]

    def test_semijoin_views_not_confused_across_different_reductions(self):
        # two queries with identical plan structure but different
        # constants reduce the tables differently; content keying must
        # keep their views apart
        db = ProbabilisticDatabase()
        db.add_table("R1", [((1, 1), 0.5), ((2, 2), 0.5)])
        db.add_table("R2", [((1, 10), 0.5), ((2, 20), 0.5)])
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        reference = DissociationEngine(db)
        for constant in (1, 2, 1, 2):
            q = parse_query(f"q(y) :- R1({constant},x), R2(x,y)")
            got = engine.propagation_score(q, Optimizations.all())
            want = reference.propagation_score(q, Optimizations.all())
            assert_scores_close(got, want)

    def test_tiny_caps_still_correct(self):
        q = parse_query("q(x0) :- R1(x0,x1), R2(x1,x2), R3(x2,x3)")
        db = _chain_db(3, 30, seed=12)
        want = DissociationEngine(db).propagation_score(q, ALL_PLANS_REUSE)
        for cap in (0, 1, 2):
            engine = DissociationEngine(
                db, EngineConfig(backend="sqlite", cache_size=cap)
            )
            got = engine.propagation_score(q, ALL_PLANS_REUSE)
            assert_scores_close(want, got)
            stats = engine.cache_stats()
            assert stats["max_size"] == cap
            assert stats["size"] <= cap


class TestSQLiteLifecycle:
    def test_mutation_between_queries_never_serves_stale_views(self):
        # regression: the SQLite copy (tables *and* temp views) must be
        # rebuilt when the source database mutates between queries
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((1, 2), 0.5)])
        q = parse_query("q(x) :- R(x), S(x,y)")
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        assert engine.propagation_score(q, ALL_PLANS_REUSE) == {(1,): 0.25}
        db.table("S").insert((1, 3), 0.5)
        want = DissociationEngine(db).propagation_score(q, ALL_PLANS_REUSE)
        got = engine.propagation_score(q, ALL_PLANS_REUSE)
        assert_scores_close(got, want)
        assert got[(1,)] == pytest.approx(0.5 * (1 - 0.25))

    def test_mutation_invalidates_probability_update(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        q = parse_query("q(x) :- R(x)")
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        assert engine.propagation_score(q) == {(1,): 0.5}
        db.table("R").insert((1,), 0.9)  # overwrite the marginal
        assert engine.propagation_score(q) == {(1,): 0.9}

    def test_added_table_visible_to_later_queries(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        engine.propagation_score(parse_query("q(x) :- R(x)"))
        db.add_table("T", [((1,), 0.25)])
        scores = engine.propagation_score(parse_query("q(x) :- R(x), T(x)"))
        assert scores == {(1,): pytest.approx(0.125)}

    def test_cache_stats_cumulative_across_rebuilds(self):
        # counter parity with the memory cache: invalidation by mutation
        # must not reset the engine-level hit/miss/eviction counters
        q = parse_query("q() :- R1(x0,x1), R2(x1,x2)")
        db = _chain_db(2, 20, seed=13)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        # two calls: the repeat promotes any subplans Algorithm 3 kept
        # inline on the cold call, guaranteeing registered views
        engine.propagation_score(q, ALL_PLANS_REUSE)
        engine.propagation_score(q, ALL_PLANS_REUSE)
        before = engine.cache_stats()
        assert before["misses"] > 0
        db.table("R1").insert((1, 1), 0.5)
        # the rebuild starts a fresh registry (and request history), so
        # again two calls re-register views; the counters keep counting
        engine.propagation_score(q, ALL_PLANS_REUSE)
        engine.propagation_score(q, ALL_PLANS_REUSE)
        after = engine.cache_stats()
        assert after["misses"] > before["misses"]

    def test_backend_refreshed_in_place_on_mutation(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        q = parse_query("q(x) :- R(x)")
        engine.propagation_score(q)
        first = engine._sqlite
        db.table("R").insert((2,), 0.25)
        # the snapshot is refreshed in place — same backend object and
        # connection, with the mutated table reloaded
        scores = engine.propagation_score(q)
        assert engine._sqlite is first
        assert engine._sqlite.source_version == db.version
        assert set(scores) == {(1,), (2,)}


class TestRandomizedTempViewPath:
    """Seeded, deterministic property tests over the temp-view path."""

    @given(
        k=st.integers(2, 4),
        n=st.integers(5, 30),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_chain_workloads_agree_across_backends(self, k, n, seed):
        from repro.workloads import chain_query

        q = chain_query(k)
        db = _chain_db(k, n, seed=seed)
        assert_backends_agree(q, db)

    @given(
        k=st.integers(1, 3),
        n=st.integers(5, 25),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_star_workloads_agree_across_backends(self, k, n, seed):
        from repro.workloads import star_database, star_query

        q = star_query(k)
        db = star_database(k, n, seed=seed, p_max=0.6)
        assert_backends_agree(q, db)

    @given(
        trial=st.integers(0, 10_000),
        cap=st.sampled_from([None, 0, 1, 3]),
    )
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_random_queries_agree_under_any_view_cap(self, trial, cap):
        rng = random.Random(trial)
        q = random_query(rng, head_vars=rng.randint(0, 2))
        db = random_database_for(q, rng, domain_size=2)
        assert_backends_agree(
            q,
            db,
            combos=(ALL_PLANS_REUSE, Optimizations()),
            cache_size=cap,
        )

    @given(
        k=st.integers(2, 3),
        n=st.integers(5, 20),
        seed=st.integers(0, 10_000),
        new_row=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        p=st.floats(0.1, 0.9),
    )
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_cache_invalidation_after_mutation(self, k, n, seed, new_row, p):
        from repro.workloads import chain_query

        q = chain_query(k)
        db = _chain_db(k, n, seed=seed)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        engine.propagation_score(q, ALL_PLANS_REUSE)
        db.table("R1").insert(new_row, p)
        got = engine.propagation_score(q, ALL_PLANS_REUSE)
        want = DissociationEngine(db, EngineConfig(backend="sqlite")).propagation_score(
            q, ALL_PLANS_REUSE
        )
        assert_scores_close(got, want)

    @given(
        k=st.integers(2, 3),
        n=st.integers(5, 20),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_view_registry_reuse_across_queries(self, k, n, seed):
        from repro.workloads import chain_query

        db = _chain_db(k, n, seed=seed)
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        fresh = DissociationEngine(db, EngineConfig(backend="sqlite"))
        # evaluate the full chain, then its prefix sub-chains: shared
        # subplans must come from the registry and stay correct
        for length in range(k, 0, -1):
            q = chain_query(length)
            got = engine.propagation_score(q, ALL_PLANS_REUSE)
            want = fresh.propagation_score(q, ALL_PLANS_REUSE)
            assert_scores_close(got, want)
