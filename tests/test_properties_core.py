"""Property-based tests (hypothesis) for the query-level machinery.

Strategies build random self-join-free queries; the properties are the
paper's structural theorems: hierarchy characterizations agree, Algorithm 1
is conservative, plans cover all atoms, the dissociation order is
respected, and Theorem 18's mappings are mutually inverse.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    Atom,
    ConjunctiveQuery,
    Variable,
    enumerate_safe_dissociations,
    is_hierarchical,
    is_hierarchical_recursive,
    min_cutsets,
    min_p_cutsets,
    minimal_plans,
    minimal_safe_dissociations,
    parse_query,
)
from repro.core.dissociation import dissociation_of_plan, plan_for
from repro.core.plans import Join
from repro.core.singleplan import single_plan

VARIABLES = [Variable(f"x{i}") for i in range(4)]


@st.composite
def queries(draw, max_atoms: int = 4, head: bool = True):
    n_atoms = draw(st.integers(1, max_atoms))
    atoms = []
    for i in range(n_atoms):
        arity = draw(st.integers(1, 3))
        terms = tuple(
            VARIABLES[draw(st.integers(0, len(VARIABLES) - 1))]
            for _ in range(arity)
        )
        atoms.append(Atom(f"R{i}", terms))
    used = sorted(frozenset().union(*(a.own_variables for a in atoms)))
    if head:
        n_head = draw(st.integers(0, min(2, len(used))))
        head_vars = used[:n_head]
    else:
        head_vars = []
    return ConjunctiveQuery(atoms, head_vars)


@settings(max_examples=200, deadline=None)
@given(queries())
def test_hierarchy_characterizations_agree(q):
    assert is_hierarchical(q) == is_hierarchical_recursive(q)


@settings(max_examples=200, deadline=None)
@given(queries())
def test_conservativity_single_plan_iff_safe(q):
    plans = minimal_plans(q)
    assert plans
    assert (len(plans) == 1) == is_hierarchical(q)


@settings(max_examples=200, deadline=None)
@given(queries())
def test_plans_cover_all_atoms_with_query_head(q):
    for plan in minimal_plans(q):
        assert {a.relation for a in plan.atoms()} == {
            a.relation for a in q.atoms
        }
        assert plan.head_variables == q.head


@settings(max_examples=100, deadline=None)
@given(queries(max_atoms=3))
def test_minimal_plans_match_minimal_safe_dissociations(q):
    plans = minimal_plans(q)
    assert {dissociation_of_plan(p) for p in plans} == set(
        minimal_safe_dissociations(q)
    )


@settings(max_examples=100, deadline=None)
@given(queries(max_atoms=3))
def test_theorem_18_roundtrip(q):
    for delta in enumerate_safe_dissociations(q):
        plan = plan_for(q, delta)
        assert dissociation_of_plan(plan) == delta


@settings(max_examples=150, deadline=None)
@given(queries())
def test_min_cutsets_are_minimal_antichain(q):
    cuts = min_cutsets(q)
    for a in cuts:
        for b in cuts:
            if a is not b:
                assert not a <= b or a == b


@settings(max_examples=150, deadline=None)
@given(queries(), st.data())
def test_min_p_cutsets_subsume_or_extend_min_cuts(q, data):
    relations = [a.relation for a in q.atoms]
    n_det = data.draw(st.integers(0, len(relations)))
    deterministic = frozenset(relations[:n_det])
    p_cuts = min_p_cutsets(q, deterministic)
    # every p-cut is a cut (or ∅ for disconnected queries)
    all_cuts = {frozenset(c) for c in min_cutsets(q)}
    for cut in p_cuts:
        # a p-cut contains some ordinary min-cut
        assert any(c <= cut for c in all_cuts) or cut == frozenset()


@settings(max_examples=150, deadline=None)
@given(queries())
def test_single_plan_structure(q):
    plan = single_plan(q)
    assert {a.relation for a in plan.atoms()} == {
        a.relation for a in q.atoms
    }
    assert plan.head_variables == q.head
    if is_hierarchical(q):
        assert not plan.contains_min()


@settings(max_examples=150, deadline=None)
@given(queries())
def test_joins_alternate_with_projections(q):
    """Definition 4: no join has a join child (flattening invariant)."""
    for plan in minimal_plans(q):
        for node in plan.walk():
            if isinstance(node, Join):
                for child in node.children():
                    assert not isinstance(child, Join)


@settings(max_examples=100, deadline=None)
@given(queries(max_atoms=3))
def test_safe_dissociations_upward_closed_within_plans(q):
    """Every plan's dissociation is safe (Def. 13 via Thm. 18)."""
    for plan in minimal_plans(q):
        delta = dissociation_of_plan(plan)
        assert is_hierarchical(delta.apply(q))
