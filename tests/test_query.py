"""Unit tests for repro.core.query."""

import pytest

from repro.core import Atom, ConjunctiveQuery, Variable, parse_query

x, y, z, u, v = (Variable(n) for n in "xyzuv")


class TestConstruction:
    def test_self_join_rejected(self):
        with pytest.raises(ValueError, match="self-join"):
            ConjunctiveQuery([Atom("R", (x,)), Atom("R", (y,))])

    def test_head_must_occur_in_body(self):
        with pytest.raises(ValueError, match="head variables"):
            ConjunctiveQuery([Atom("R", (x,))], head=[y])

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([])

    def test_head_order_preserved(self):
        q = parse_query("q(z, x) :- R(x, z)")
        assert [v.name for v in q.head_order] == ["z", "x"]

    def test_head_order_deduplicated(self):
        q = ConjunctiveQuery([Atom("R", (x, y))], head=[x, y, x])
        assert q.head_order == (x, y)

    def test_str_round_trips_through_parser(self):
        q = parse_query("q(z) :- R(z, x), S(x, y)")
        assert parse_query(str(q)) == q


class TestVariableSets:
    def test_variables(self):
        q = parse_query("q() :- R(x, y), S(y, z)")
        assert q.variables == {x, y, z}

    def test_existential_variables(self):
        q = parse_query("q(x) :- R(x, y)")
        assert q.existential_variables == {y}

    def test_atoms_containing(self):
        q = parse_query("q() :- R(x, y), S(y, z), T(z)")
        assert {a.relation for a in q.atoms_containing(y)} == {"R", "S"}

    def test_dissociated_variables_are_structural(self):
        q = parse_query("q() :- R(x), S(x, y)")
        q2 = q.dissociate({"R": frozenset([y])})
        assert {a.relation for a in q2.atoms_containing(y)} == {"R", "S"}

    def test_separator_variables(self):
        q = parse_query("q() :- R(x, y), S(y, z)")
        assert q.separator_variables() == {y}

    def test_no_separator(self):
        q = parse_query("q() :- R(x), S(y)")
        assert q.separator_variables() == frozenset()


class TestMinus:
    def test_minus_shrinks_arity(self):
        q = parse_query("q() :- R(x, y), S(y)")
        reduced = q.minus([y])
        assert reduced.atom("R").terms == (x,)
        assert reduced.atom("S").terms == ()

    def test_minus_removes_head(self):
        q = parse_query("q(x) :- R(x, y)")
        assert q.minus([x]).head == frozenset()


class TestConnectivity:
    def test_connected_via_existential(self):
        q = parse_query("q() :- R(x, y), S(y, z)")
        assert q.is_connected()

    def test_head_variables_act_as_constants(self):
        q = parse_query("q(y) :- R(x, y), S(y, z)")
        comps = q.connected_components()
        assert len(comps) == 2

    def test_component_heads_restricted(self):
        q = parse_query("q(y) :- R(x, y), S(y, z), T(u)")
        comps = q.connected_components()
        assert len(comps) == 3
        for comp in comps:
            assert comp.head <= comp.variables

    def test_paper_example_disconnected(self):
        # q :- R(x,y), S(z,u), T(u,v) has components {R} and {S,T}
        q = parse_query("q() :- R(x, y), S(z, u), T(u, v)")
        comps = q.connected_components()
        assert sorted(len(c.atoms) for c in comps) == [1, 2]

    def test_single_atom_connected(self):
        assert parse_query("q() :- R(x)").is_connected()


class TestEquality:
    def test_atom_order_irrelevant(self):
        q1 = parse_query("q() :- R(x), S(x)")
        q2 = parse_query("q() :- S(x), R(x)")
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_head_matters(self):
        q1 = parse_query("q(x) :- R(x, y)")
        q2 = parse_query("q() :- R(x, y)")
        assert q1 != q2
