"""Property-based tests for evaluation: bounds, agreement, monotonicity.

These check the paper's semantic guarantees on random (query, database)
pairs:

* Corollary 19 — every plan's score upper-bounds the exact probability;
* conservativity — safe queries are computed exactly;
* backend agreement — memory and SQLite produce identical scores;
* Optimization 3 — semi-join reduction never changes scores;
* Proposition 21 — the relative error of ρ vanishes as probabilities
  are scaled down.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.api import EngineConfig
from repro.core import is_hierarchical, minimal_plans
from repro.db import ProbabilisticDatabase
from repro.engine import (
    DissociationEngine,
    Optimizations,
    plan_scores,
    reduce_database,
)
from repro.lineage import DNF, exact_probability, lineage_of

from .helpers import random_database_for, random_query
from .test_properties_core import queries


@st.composite
def query_and_database(draw, max_atoms: int = 3):
    q = draw(queries(max_atoms=max_atoms))
    seed = draw(st.integers(0, 10_000))
    db = random_database_for(q, random.Random(seed), domain_size=2)
    return q, db


@settings(max_examples=60, deadline=None)
@given(query_and_database())
def test_every_plan_upper_bounds_exact(pair):
    q, db = pair
    engine = DissociationEngine(db)
    exact = engine.exact(q)
    for plan in minimal_plans(q):
        scores = plan_scores(plan, q, db)
        assert set(scores) == set(exact)
        for answer in exact:
            assert scores[answer] >= exact[answer] - 1e-9


@settings(max_examples=60, deadline=None)
@given(query_and_database())
def test_safe_queries_computed_exactly(pair):
    q, db = pair
    if not is_hierarchical(q):
        return
    engine = DissociationEngine(db)
    exact = engine.exact(q)
    rho = engine.propagation_score(q)
    for answer in exact:
        assert abs(rho[answer] - exact[answer]) < 1e-9


@settings(max_examples=40, deadline=None)
@given(query_and_database())
def test_backends_agree(pair):
    q, db = pair
    memory = DissociationEngine(db).propagation_score(q)
    sqlite = DissociationEngine(db, EngineConfig(backend="sqlite")).propagation_score(q)
    assert set(memory) == set(sqlite)
    for answer in memory:
        assert abs(memory[answer] - sqlite[answer]) < 1e-9


@settings(max_examples=40, deadline=None)
@given(query_and_database())
def test_semijoin_reduction_preserves_scores(pair):
    q, db = pair
    engine = DissociationEngine(db)
    plain = engine.propagation_score(q)
    reduced = engine.propagation_score(q, Optimizations(semijoin=True))
    assert set(plain) == set(reduced)
    for answer in plain:
        assert abs(plain[answer] - reduced[answer]) < 1e-9


@settings(max_examples=40, deadline=None)
@given(query_and_database())
def test_reduction_preserves_answers(pair):
    q, db = pair
    assert set(lineage_of(q, db).by_answer) == set(
        lineage_of(q, reduce_database(q, db)).by_answer
    )


@settings(max_examples=40, deadline=None)
@given(query_and_database())
def test_scores_within_unit_interval(pair):
    q, db = pair
    for score in DissociationEngine(db).propagation_score(q).values():
        assert -1e-12 <= score <= 1.0 + 1e-12


@settings(max_examples=25, deadline=None)
@given(query_and_database(), st.sampled_from([0.5, 0.2, 0.05]))
def test_proposition_21_error_shrinks_with_scale(pair, factor):
    """Scaling all probabilities down shrinks ρ's relative error."""
    q, db = pair
    engine = DissociationEngine(db)
    exact = engine.exact(q)
    rho = engine.propagation_score(q)
    answers = [a for a in exact if exact[a] > 1e-9]
    if not answers:
        return
    base_error = max(
        (rho[a] - exact[a]) / exact[a] for a in answers
    )

    scaled = db.scaled(factor, include_deterministic=True)
    scaled_engine = DissociationEngine(scaled)
    scaled_exact = scaled_engine.exact(q)
    scaled_rho = scaled_engine.propagation_score(q)
    scaled_answers = [a for a in scaled_exact if scaled_exact[a] > 1e-12]
    if not scaled_answers:
        return
    scaled_error = max(
        (scaled_rho[a] - scaled_exact[a]) / scaled_exact[a]
        for a in scaled_answers
    )
    assert scaled_error <= base_error + 1e-9


@settings(max_examples=30, deadline=None)
@given(query_and_database(max_atoms=2), st.integers(0, 1000))
def test_monte_carlo_unbiasedness_envelope(pair, seed):
    """MC estimates stay within a generous CLT envelope of exact."""
    q, db = pair
    engine = DissociationEngine(db)
    exact = engine.exact(q)
    if not exact:
        return
    estimates = engine.monte_carlo(q, samples=4000, seed=seed)
    for answer, p in exact.items():
        sigma = (p * (1 - p) / 4000) ** 0.5
        assert abs(estimates[answer] - p) <= 6 * sigma + 1e-9


@settings(max_examples=60, deadline=None)
@given(query_and_database(max_atoms=3))
def test_lineage_probability_equals_exact(pair):
    """P(q) = P(F_{q,D}) — grounding then counting matches the engine."""
    q, db = pair
    lineage = lineage_of(q, db)
    engine = DissociationEngine(db)
    exact = engine.exact(q)
    for answer, formula in lineage.by_answer.items():
        assert abs(
            exact_probability(formula, lineage.probabilities)
            - exact[answer]
        ) < 1e-9
