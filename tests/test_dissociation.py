"""Tests for the dissociation lattice and the Theorem 18 mappings."""

import random

import pytest

from repro.core import (
    Dissociation,
    Variable,
    count_dissociations,
    enumerate_dissociations,
    enumerate_safe_dissociations,
    is_hierarchical,
    minimal_plans,
    minimal_safe_dissociations,
    parse_query,
)
from repro.core.dissociation import dissociation_of_plan, plan_for
from repro.core.safety import UnsafeQueryError
from repro.db import ProbabilisticDatabase
from repro.engine import DissociationEngine, plan_scores
from repro.lineage import exact_probability, lineage_of

from .helpers import random_database_for, random_query

x, y = Variable("x"), Variable("y")


class TestDissociationObject:
    def test_empty_components_dropped(self):
        d = Dissociation({"R": frozenset(), "S": frozenset([x])})
        assert "R" not in d.extras
        assert d.size() == 1

    def test_partial_order(self):
        bottom = Dissociation({})
        mid = Dissociation({"R": frozenset([x])})
        top = Dissociation({"R": frozenset([x, y])})
        assert bottom <= mid <= top
        assert bottom < top
        assert not top <= mid

    def test_incomparable(self):
        a = Dissociation({"R": frozenset([x])})
        b = Dissociation({"S": frozenset([x])})
        assert not a <= b and not b <= a

    def test_probabilistic_preorder_ignores_deterministic(self):
        a = Dissociation({"T": frozenset([x])})
        b = Dissociation({})
        assert a.le_probabilistic(b, deterministic=frozenset({"T"}))
        assert not a <= b

    def test_apply(self):
        q = parse_query("q() :- R(x), S(x,y)")
        d = Dissociation({"R": frozenset([y])})
        q2 = d.apply(q)
        assert q2.atom("R").variables == {x, y}
        assert q2.atom("R").own_variables == {x}

    def test_str(self):
        assert str(Dissociation({})) == "∆⊥"
        assert "R+{y}" in str(Dissociation({"R": frozenset([y])}))


class TestEnumeration:
    def test_count_matches_enumeration(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        assert count_dissociations(q) == len(list(enumerate_dissociations(q)))

    def test_enumeration_sorted_by_rank(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        sizes = [d.size() for d in enumerate_dissociations(q)]
        assert sizes == sorted(sizes)

    def test_example_17_lattice(self):
        # 2^3 = 8 dissociations, 5 safe, 2 minimal safe (Fig. 1)
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        assert count_dissociations(q) == 8
        assert len(enumerate_safe_dissociations(q)) == 5
        assert len(minimal_safe_dissociations(q)) == 2

    def test_example_17_minimal_dissociations(self):
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        minimal = set(minimal_safe_dissociations(q))
        expected = {
            Dissociation({"U": frozenset([x])}),
            Dissociation({"R": frozenset([y]), "S": frozenset([y])}),
        }
        assert minimal == expected

    def test_safe_query_minimal_is_bottom(self):
        q = parse_query("q() :- R(x), S(x,y)")
        assert minimal_safe_dissociations(q) == [Dissociation({})]


class TestMonotonicity:
    """Corollary 16: P(q^∆) increases along the lattice."""

    def test_probability_monotone_on_random_instances(self):
        rng = random.Random(5)
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        db = random_database_for(q, rng)
        scored: dict[Dissociation, float] = {}
        for d in enumerate_safe_dissociations(q):
            plan = plan_for(q, d)
            scored[d] = plan_scores(plan, q, db).get((), 0.0)
        for a in scored:
            for b in scored:
                if a < b:
                    assert scored[a] <= scored[b] + 1e-12, (a, b)

    def test_dissociated_probability_is_upper_bound(self):
        rng = random.Random(6)
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        db = random_database_for(q, rng)
        lineage = lineage_of(q, db)
        exact = exact_probability(
            lineage.by_answer.get((), __import__("repro.lineage", fromlist=["DNF"]).DNF()),
            lineage.probabilities,
        )
        for d in enumerate_safe_dissociations(q):
            plan = plan_for(q, d)
            score = plan_scores(plan, q, db).get((), 0.0)
            assert score >= exact - 1e-12


class TestTheorem18:
    def test_roundtrip_on_example_17(self):
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        for d in enumerate_safe_dissociations(q):
            assert dissociation_of_plan(plan_for(q, d)) == d

    def test_minimal_plans_are_minimal_dissociations(self):
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        plan_deltas = {dissociation_of_plan(p) for p in minimal_plans(q)}
        assert plan_deltas == set(minimal_safe_dissociations(q))

    def test_plan_for_unsafe_dissociation_raises(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        with pytest.raises(UnsafeQueryError):
            plan_for(q, Dissociation({}))  # q itself is unsafe

    def test_plan_for_materialized_equivalence(self):
        """P(q^∆) on the dissociated database equals score(P_∆) on the
        original (Theorem 18 (2)) — checked by explicit materialization."""
        rng = random.Random(42)
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        db = random_database_for(q, rng, domain_size=2)
        d = Dissociation({"T": frozenset([x])})
        plan = plan_for(q, d)
        score = plan_scores(plan, q, db).get((), 0.0)

        # materialize D^∆: copy T once per value in ADom(x)
        adom_x = sorted(
            {row[0] for row, _ in db.table("R")}
            | {row[0] for row, _ in db.table("S")}
        )
        mat = ProbabilisticDatabase()
        mat.add_table("R", list(db.table("R")), arity=1)
        mat.add_table("S", list(db.table("S")), arity=2)
        mat.add_table(
            "T",
            [((row[0], a), p) for row, p in db.table("T") for a in adom_x],
            arity=2,
        )
        q_diss = parse_query("q() :- R(x), S(x,y), T(y,x)")
        lineage = lineage_of(q_diss, mat)
        from repro.lineage import DNF

        exact = exact_probability(
            lineage.by_answer.get((), DNF()), lineage.probabilities
        )
        assert abs(score - exact) < 1e-9
