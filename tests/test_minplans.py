"""Tests for Algorithm 1 (minimal plans) and the full plan space.

The strongest anchors are the Figure 2 integer sequences and the 1-to-1
correspondence with (minimal) safe dissociations on small queries.
"""

import random

import pytest

from repro.core import (
    ColumnFD,
    Variable,
    count_all_plans,
    count_dissociations,
    enumerate_all_plans,
    enumerate_safe_dissociations,
    is_hierarchical,
    minimal_plans,
    minimal_safe_dissociations,
    parse_query,
)
from repro.core.dissociation import dissociation_of_plan, plan_for
from repro.experiments import catalan, fubini, super_catalan
from repro.workloads import chain_query, star_query

from .helpers import random_query

x, y = Variable("x"), Variable("y")


class TestFig2Chains:
    @pytest.mark.parametrize("k", range(2, 9))
    def test_minimal_plan_counts_are_catalan(self, k):
        assert len(minimal_plans(chain_query(k))) == catalan(k - 1)

    @pytest.mark.parametrize("k", range(2, 8))
    def test_total_plan_counts_are_super_catalan(self, k):
        assert count_all_plans(chain_query(k)) == super_catalan(k - 1)

    @pytest.mark.parametrize("k", range(2, 8))
    def test_dissociation_counts(self, k):
        assert count_dissociations(chain_query(k)) == 2 ** ((k - 1) * (k - 2))


class TestFig2Stars:
    @pytest.mark.parametrize("k", range(1, 7))
    def test_minimal_plan_counts_are_factorials(self, k):
        import math

        assert len(minimal_plans(star_query(k))) == math.factorial(k)

    @pytest.mark.parametrize("k", range(1, 6))
    def test_total_plan_counts_are_fubini(self, k):
        assert count_all_plans(star_query(k)) == fubini(k)

    @pytest.mark.parametrize("k", range(1, 6))
    def test_dissociation_counts(self, k):
        assert count_dissociations(star_query(k)) == 2 ** (k * (k - 1))


class TestStructure:
    def test_example_17_minimal_plans(self):
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        plans = minimal_plans(q)
        assert len(plans) == 2
        for plan in plans:
            assert {a.relation for a in plan.atoms()} == {"R", "S", "T", "U"}

    def test_safe_query_single_plan(self):
        q = parse_query("q() :- R(x), S(x,y)")
        plans = minimal_plans(q)
        assert len(plans) == 1
        assert plans[0].is_safe()

    def test_every_plan_covers_all_atoms(self):
        for k in (3, 4, 5):
            q = chain_query(k)
            for plan in minimal_plans(q):
                assert len(plan.atoms()) == k

    def test_plans_have_query_head(self):
        q = chain_query(4)
        for plan in minimal_plans(q):
            assert plan.head_variables == q.head

    def test_all_plans_include_minimal(self):
        q = chain_query(4)
        every = set(enumerate_all_plans(q))
        for plan in minimal_plans(q):
            assert plan in every

    def test_plans_unique(self):
        q = chain_query(5)
        plans = minimal_plans(q)
        assert len(set(plans)) == len(plans)


class TestCorrespondenceWithDissociations:
    """Theorem 18 on small queries: plans ↔ safe dissociations."""

    @pytest.mark.parametrize(
        "text",
        [
            "q() :- R(x), S(x,y), T(y)",
            "q() :- R(x), S(x), T(x,y), U(y)",
            "q(x0, x3) :- R1(x0,x1), R2(x1,x2), R3(x2,x3)",
            "q() :- R(x), S(y), T(x,y)",
        ],
    )
    def test_minimal_plans_match_minimal_safe_dissociations(self, text):
        q = parse_query(text)
        plans = minimal_plans(q)
        minimal = minimal_safe_dissociations(q)
        assert len(plans) == len(minimal)
        plan_deltas = {dissociation_of_plan(p) for p in plans}
        assert plan_deltas == set(minimal)

    def test_plan_dissociations_are_safe(self):
        q = chain_query(4)
        for plan in enumerate_all_plans(q):
            delta = dissociation_of_plan(plan)
            assert is_hierarchical(delta.apply(q)), (plan, delta)

    def test_safe_dissociation_count_vs_plan_count(self):
        # Every enumerated plan arises as P_∆ of a safe dissociation; safe
        # dissociations beyond the plan space (those needing cross-product
        # joins, see minplans._all_join_top) are all non-minimal.
        for k in (3, 4):
            q = chain_query(k)
            plan_space = set(enumerate_all_plans(q))
            safe = enumerate_safe_dissociations(q)
            in_space = [d for d in safe if plan_for(q, d) in plan_space]
            assert len(in_space) == len(plan_space)
            minimal = set(minimal_safe_dissociations(q))
            outside = [d for d in safe if plan_for(q, d) not in plan_space]
            for d in outside:
                assert d not in minimal
                assert any(m < d for m in minimal), (
                    f"cross-product dissociation {d} not dominated"
                )

    def test_plan_dissociation_roundtrip(self):
        # ∆ ↦ P_∆ ↦ ∆ is the identity on all safe dissociations (Thm. 18)
        q = chain_query(4)
        for d in enumerate_safe_dissociations(q):
            assert dissociation_of_plan(plan_for(q, d)) == d


class TestDeterministicRelations:
    def test_example_23_single_plan(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        plans = minimal_plans(q, deterministic={"T"})
        assert len(plans) == 1
        # expected shape: π(R ⋈ π_x(S ⋈ T))
        assert str(plans[0]).count("π") == 2

    def test_example_23_both_deterministic(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        plans = minimal_plans(q, deterministic={"R", "T"})
        assert len(plans) == 1
        # collapsed plan: single join, single projection
        assert str(plans[0]).count("π") == 1

    def test_all_deterministic(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        plans = minimal_plans(q, deterministic={"R", "S", "T"})
        assert len(plans) == 1

    def test_deterministic_reduces_plan_count(self):
        q = chain_query(5)
        baseline = len(minimal_plans(q))
        with_dr = len(minimal_plans(q, deterministic={"R2"}))
        assert with_dr <= baseline

    def test_unrelated_deterministic_relation_no_effect(self):
        q = parse_query("q() :- R(x), S(x), T(x,y), U(y)")
        assert len(minimal_plans(q, deterministic={"S"})) <= 2


class TestFunctionalDependencies:
    def test_fd_makes_rst_safe(self):
        # S: x → y turns R(x),S(x,y),T(y) safe (Sec. 3.3.2)
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        fds = {"S": [ColumnFD((0,), (1,))]}
        plans = minimal_plans(q, fds=fds)
        assert len(plans) == 1

    def test_fd_plan_joins_r_and_s_first(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        fds = {"S": [ColumnFD((0,), (1,))]}
        (plan,) = minimal_plans(q, fds=fds)
        # the plan corresponding to dissociating R on y:
        # π(⋈[π_y(R ⋈ S), T])
        text = str(plan)
        assert "R(x)" in text and "S(x, y)" in text
        r_pos = text.index("R(x)")
        t_pos = text.index("T(y)")
        assert r_pos < t_pos

    def test_reverse_fd_selects_other_plan(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        fds = {"S": [ColumnFD((1,), (0,))]}  # y → x
        plans = minimal_plans(q, fds=fds)
        assert len(plans) == 1

    def test_irrelevant_fd_no_change(self):
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        fds = {"S": [ColumnFD((0, 1), ())]}
        assert len(minimal_plans(q, fds=fds)) == 2

    def test_fd_chain_through_atoms(self):
        # R1: x0→x1 and R2: x1→x2 make the closure propagate
        q = chain_query(3)
        fds = {
            "R1": [ColumnFD((0,), (1,))],
            "R2": [ColumnFD((0,), (1,))],
        }
        plans = minimal_plans(q, fds=fds)
        assert len(plans) == 1


class TestRandomQueries:
    def test_safe_iff_single_plan(self):
        rng = random.Random(11)
        for _ in range(200):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            plans = minimal_plans(q)
            assert plans, str(q)
            assert (len(plans) == 1) == is_hierarchical(q), str(q)

    def test_minimal_dissociations_match(self):
        rng = random.Random(13)
        for _ in range(60):
            q = random_query(rng, max_atoms=3, max_vars=3)
            plans = minimal_plans(q)
            minimal = minimal_safe_dissociations(q)
            assert len(plans) == len(minimal), str(q)
