"""Property-based tests for the ranking metrics."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ranking import (
    average_precision_at_k,
    random_ranking_ap,
    tied_rank_intervals,
    top_k,
)


@st.composite
def score_maps(draw, min_size: int = 1, max_size: int = 25):
    n = draw(st.integers(min_size, max_size))
    values = draw(
        st.lists(
            st.floats(0, 1, allow_nan=False), min_size=n, max_size=n
        )
    )
    return {i: v for i, v in enumerate(values)}


@settings(max_examples=200, deadline=None)
@given(score_maps())
def test_ap_self_is_one_without_ties(scores):
    distinct = {k: v for k, v in scores.items()}
    # break ties deterministically by perturbing with the key
    perturbed = {k: (v, -k) for k, v in distinct.items()}
    as_floats = {
        k: rank for rank, (k, _) in enumerate(
            sorted(perturbed.items(), key=lambda kv: kv[1], reverse=True)
        )
    }
    untied = {k: len(as_floats) - r for k, r in as_floats.items()}
    assert abs(average_precision_at_k(untied, untied, k=10) - 1.0) < 1e-9


@settings(max_examples=200, deadline=None)
@given(score_maps(), score_maps())
def test_ap_bounded(returned, ground_truth):
    # align key spaces
    returned = {k: v for k, v in returned.items() if k in ground_truth}
    ap = average_precision_at_k(returned, ground_truth, k=10)
    assert -1e-12 <= ap <= 1.0 + 1e-12


@settings(max_examples=200, deadline=None)
@given(score_maps(min_size=2))
def test_flat_ranking_matches_closed_form(ground_truth):
    flat = {k: 0.5 for k in ground_truth}
    ap = average_precision_at_k(flat, ground_truth, k=10)
    # with GT ties the flat ranking can only do better than the closed
    # form for fully distinct GT
    assert ap >= random_ranking_ap(len(ground_truth), 10) - 1e-9


@settings(max_examples=200, deadline=None)
@given(score_maps())
def test_intervals_partition_ranks(scores):
    intervals = tied_rank_intervals(scores)
    n = len(scores)
    covered = sorted(
        rank for a, b in intervals.values() for rank in range(a, b + 1)
    )
    # every rank 1..n covered exactly (group of size g covers g ranks,
    # each member claiming the same interval)
    assert set(covered) == set(range(1, n + 1))
    for item, (a, b) in intervals.items():
        group = [i for i, (x, y) in intervals.items() if (x, y) == (a, b)]
        assert len(group) == b - a + 1


@settings(max_examples=200, deadline=None)
@given(score_maps(), st.integers(1, 25))
def test_top_k_is_prefix_monotone(scores, k):
    shorter = top_k(scores, k)
    longer = top_k(scores, k + 1)
    assert longer[: len(shorter)] == shorter


@settings(max_examples=100, deadline=None)
@given(score_maps(min_size=3))
def test_promoting_a_relevant_item_never_hurts(ground_truth):
    """Moving the GT-best item to the top of the returned ranking can only
    improve AP."""
    items = list(ground_truth)
    best = max(items, key=lambda i: ground_truth[i])
    base = {i: float(len(items) - idx) for idx, i in enumerate(items)}
    ap_before = average_precision_at_k(base, ground_truth, k=10)
    promoted = dict(base)
    promoted[best] = max(base.values()) + 1
    ap_after = average_precision_at_k(promoted, ground_truth, k=10)
    assert ap_after >= ap_before - 1e-9
