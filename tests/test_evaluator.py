"""Tests for the DissociationEngine facade."""

import random

import pytest

from repro.api import EngineConfig
from repro.core import parse_query
from repro.db import ProbabilisticDatabase
from repro.engine import DissociationEngine, Optimizations

from .helpers import assert_scores_close, random_database_for, random_query


def example_17_db() -> ProbabilisticDatabase:
    db = ProbabilisticDatabase()
    half = 0.5
    db.add_table("R", [((1,), half), ((2,), half)])
    db.add_table("S", [((1,), half), ((2,), half)])
    db.add_table("T", [((1, 1), half), ((1, 2), half), ((2, 2), half)])
    db.add_table("U", [((1,), half), ((2,), half)])
    return db


EXAMPLE_17 = "q() :- R(x), S(x), T(x,y), U(y)"


class TestExample17:
    """The paper's worked example with exact fractions."""

    def test_exact(self):
        engine = DissociationEngine(example_17_db())
        assert abs(engine.exact(parse_query(EXAMPLE_17))[()] - 83 / 2**9) < 1e-12

    def test_propagation_score(self):
        engine = DissociationEngine(example_17_db())
        rho = engine.propagation_score(parse_query(EXAMPLE_17))[()]
        assert abs(rho - 169 / 2**10) < 1e-12

    def test_per_plan_scores(self):
        engine = DissociationEngine(example_17_db())
        per_plan = engine.score_per_plan(parse_query(EXAMPLE_17))
        values = sorted(s[()] for s in per_plan.values())
        assert abs(values[0] - 169 / 2**10) < 1e-12
        assert abs(values[1] - 353 / 2**11) < 1e-12


class TestOptimizationsConfig:
    def test_none_and_all(self):
        assert Optimizations.none() == Optimizations(False, False, False)
        assert Optimizations.all() == Optimizations(True, True, True)

    def test_default(self):
        opts = Optimizations()
        assert opts.single_plan and opts.reuse_views and not opts.semijoin


class TestEvaluate:
    def test_result_provenance(self):
        engine = DissociationEngine(example_17_db())
        result = engine.evaluate(parse_query(EXAMPLE_17))
        assert result.plan_count == 2
        assert result.backend == "memory"
        assert result.seconds >= 0.0
        assert result.sql is None

    def test_sqlite_result_has_sql(self):
        engine = DissociationEngine(example_17_db(), EngineConfig(backend="sqlite"))
        result = engine.evaluate(parse_query(EXAMPLE_17))
        assert result.sql and "SELECT" in result.sql

    def test_ranking_order(self):
        engine = DissociationEngine(example_17_db())
        q = parse_query("q(x) :- R(x), S(x), T(x,y), U(y)")
        result = engine.evaluate(q)
        ranking = result.ranking()
        scores = result.scores
        assert all(
            scores[ranking[i]] >= scores[ranking[i + 1]]
            for i in range(len(ranking) - 1)
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            DissociationEngine(example_17_db(), EngineConfig(backend="duckdb"))


class TestBackendAgreement:
    @pytest.mark.parametrize(
        "opts",
        [
            Optimizations.none(),
            Optimizations(single_plan=True, reuse_views=False),
            Optimizations(single_plan=True, reuse_views=True),
            Optimizations.all(),
        ],
        ids=["none", "opt1", "opt12", "opt123"],
    )
    def test_backends_agree_across_modes(self, opts):
        rng = random.Random(70)
        for _ in range(10):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            db = random_database_for(q, rng, domain_size=2)
            memory = DissociationEngine(db).propagation_score(q, opts)
            sqlite = DissociationEngine(db, EngineConfig(backend="sqlite")).propagation_score(
                q, opts
            )
            assert_scores_close(memory, sqlite, tolerance=1e-9)


class TestBaselines:
    def test_monte_carlo_close_to_exact(self):
        engine = DissociationEngine(example_17_db())
        q = parse_query(EXAMPLE_17)
        mc = engine.monte_carlo(q, 50_000, seed=0)[()]
        assert abs(mc - 83 / 2**9) < 0.01

    def test_answers_match_exact_keys(self):
        rng = random.Random(71)
        q = parse_query("q(z) :- R(z,x), S(x,y)")
        db = random_database_for(q, rng)
        engine = DissociationEngine(db)
        assert engine.answers(q) == set(engine.exact(q))

    def test_empty_answer_set(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((9, 9), 0.5)])
        q = parse_query("q() :- R(x), S(x,y)")
        engine = DissociationEngine(db)
        assert engine.propagation_score(q) == {}
        assert engine.exact(q) == {}

    def test_sqlite_invalidate(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        _ = engine.sqlite
        engine.invalidate_sqlite()
        assert engine._sqlite is None
