"""Tests for the deterministic semi-join reduction (Optimization 3)."""

import random

from repro.api import EngineConfig
from repro.core import minimal_plans, parse_query
from repro.db import ProbabilisticDatabase
from repro.engine import (
    DissociationEngine,
    Optimizations,
    plan_scores,
    reduce_database,
    semijoin_statements,
)
from repro.lineage import lineage_of

from .helpers import assert_scores_close, random_database_for, random_query


class TestInMemoryReducer:
    def test_dangling_tuples_removed(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), ((9,), 0.5)])
        db.add_table("S", [((1, 2), 0.5)])
        db.add_table("T", [((2,), 0.5), ((7,), 0.5)])
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        reduced = reduce_database(q, db)
        assert set(reduced.table("R").rows) == {(1,)}
        assert set(reduced.table("T").rows) == {(2,)}

    def test_cascading_reduction(self):
        # removing a dangling T tuple makes an S tuple dangling too
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5)])
        db.add_table("S", [((1, 2), 0.5), ((1, 3), 0.5)])
        db.add_table("T", [((2,), 0.5)])
        q = parse_query("q() :- R(x), S(x,y), T(y)")
        reduced = reduce_database(q, db)
        assert set(reduced.table("S").rows) == {(1, 2)}

    def test_constants_pushed(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(("a", 1), 0.5), (("b", 2), 0.5)])
        db.add_table("S", [((1,), 0.5), ((2,), 0.5)])
        q = parse_query("q() :- R('a', x), S(x)")
        reduced = reduce_database(q, db)
        assert set(reduced.table("R").rows) == {("a", 1)}
        assert set(reduced.table("S").rows) == {(1,)}

    def test_reduction_preserves_lineage(self):
        rng = random.Random(61)
        for _ in range(25):
            q = random_query(rng, head_vars=rng.randint(0, 1))
            db = random_database_for(q, rng, domain_size=2, fill=0.5)
            full = lineage_of(q, db)
            reduced = lineage_of(q, reduce_database(q, db))
            assert full.by_answer == reduced.by_answer, str(q)

    def test_reduction_preserves_scores(self):
        rng = random.Random(62)
        for _ in range(20):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            db = random_database_for(q, rng, domain_size=3, fill=0.4)
            reduced = reduce_database(q, db)
            for plan in minimal_plans(q):
                assert_scores_close(
                    plan_scores(plan, q, db),
                    plan_scores(plan, q, reduced),
                    tolerance=1e-9,
                )

    def test_preserves_deterministic_flag(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [(1,)], deterministic=True)
        db.add_table("S", [((1, 2), 0.5)])
        q = parse_query("q() :- R(x), S(x,y)")
        reduced = reduce_database(q, db)
        assert reduced.table("R").schema.deterministic


class TestSQLReducer:
    def test_statements_reduce_tables(self):
        db = ProbabilisticDatabase()
        db.add_table("R", [((1,), 0.5), ((9,), 0.5)])
        db.add_table("S", [((1, 2), 0.5)])
        q = parse_query("q() :- R(x), S(x,y)")
        engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
        statements, names = semijoin_statements(q, db.schema)
        engine.sqlite.run_statements(statements)
        assert engine.sqlite.table_count(names["R"]) == 1
        assert engine.sqlite.table_count(names["S"]) == 1

    def test_scores_unchanged_by_opt3(self):
        rng = random.Random(63)
        for _ in range(15):
            q = random_query(rng, head_vars=rng.randint(0, 2))
            db = random_database_for(q, rng, domain_size=2, fill=0.5)
            engine = DissociationEngine(db, EngineConfig(backend="sqlite"))
            plain = engine.propagation_score(
                q, Optimizations(semijoin=False)
            )
            reduced = engine.propagation_score(
                q, Optimizations(semijoin=True)
            )
            assert_scores_close(plain, reduced, tolerance=1e-9)

    def test_memory_backend_opt3(self):
        rng = random.Random(64)
        q = parse_query("q(z) :- R(z,x), S(x,y), T(y)")
        db = random_database_for(q, rng, fill=0.5)
        engine = DissociationEngine(db, EngineConfig(backend="memory"))
        plain = engine.propagation_score(q, Optimizations(semijoin=False))
        reduced = engine.propagation_score(q, Optimizations(semijoin=True))
        assert_scores_close(plain, reduced, tolerance=1e-9)
